//! The lockstep batch interpreter: N candidate machines, one shared decode.
//!
//! Universal search evaluates *batches* of candidate programs against the
//! same interaction prefix (the lookahead batches of
//! `CompactUniversalUser` / `LevinUniversalUser`). [`BatchVm`] steps all of
//! them through one round in lockstep with struct-of-arrays lane state —
//! registers, fuel, halt payloads, and retired counts live in flat arrays —
//! and a single [`DecodedProgram`] per *distinct* program text, so the
//! decode cost of a batch is paid once per program, not once per lane per
//! instruction.
//!
//! **Divergence masks.** Lanes leave the round at different times (a `halt`,
//! an `end`, running off the code end, or fuel exhaustion). The dispatch
//! loop never branches on per-lane liveness: it iterates an *active-lane
//! index list* and `swap_remove`s a lane the moment it diverges, so the hot
//! loop only ever touches live lanes. A lane that drops out while others
//! are still running is counted in the `vm.batch.divergence` counter;
//! `vm.batch.width` accumulates the lanes entering each batch round. Both
//! are [`Scope::Process`](goc_core::obs::Scope) — batching is a wall-clock
//! strategy, so its telemetry must stay out of the deterministic trace.
//!
//! **Gate.** `GOC_BATCH` (default on; `=0` selects the exact scalar path
//! everywhere) is latched once per process; [`with_batch`] overrides it per
//! thread for tests and apples-to-apples benchmarks. Batch and scalar
//! interpretation are observably identical — byte-identical outboxes, halt
//! payloads, registers, and retired counts — which
//! `crates/vm/tests/batch_equivalence.rs` checks property-style.

use crate::instr::REG_COUNT;
use crate::machine::{DecodedProgram, RegLane, RoundIo, StepLane, StepOutcome};
use crate::program::Program;
use std::cell::Cell;
use std::sync::Arc;
use std::sync::OnceLock;

thread_local! {
    static BATCH_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GOC_BATCH").map(|v| v != "0").unwrap_or(true))
}

/// Whether batch interpretation (and the candidate arena) is on: a
/// thread-local [`with_batch`] override if present, else the `GOC_BATCH`
/// environment latch (default **on**; `GOC_BATCH=0` is the exact scalar
/// path). Like `GOC_VM_CACHE`, the variable is read once and latched.
pub fn enabled() -> bool {
    BATCH_OVERRIDE.with(|c| c.get()).unwrap_or_else(env_enabled)
}

/// Runs `f` with batch interpretation forced on/off on this thread,
/// restoring the previous state afterwards (also on panic). This is the
/// race-free way for tests and benches to compare both paths in one
/// process; the environment latch is immutable after first read.
pub fn with_batch<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BATCH_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BATCH_OVERRIDE.with(|c| c.replace(Some(enabled))));
    f()
}

/// N machines stepped through rounds in lockstep (see module docs).
///
/// Lane state is struct-of-arrays: registers live in `RegColumns` —
/// per-register columns, so a lockstep opcode touching register `r` across
/// lanes walks contiguous memory — fuel/halt/retired are parallel vectors,
/// and `lane_decoded` maps each lane to its shared [`DecodedProgram`].
///
/// # Examples
///
/// ```
/// use goc_vm::batch::BatchVm;
/// use goc_vm::program::Program;
/// use goc_vm::machine::RoundIo;
///
/// let mut vm = BatchVm::new();
/// // Two lanes, same program text: one shared decode.
/// let say = Program::from_bytes(vec![0x01, b'x']);
/// vm.push(&say, 256);
/// vm.push(&say, 256);
/// let mut ios = vec![RoundIo::default(), RoundIo::default()];
/// vm.round(&mut ios);
/// assert_eq!(ios[0].out_a, b"x");
/// assert_eq!(ios[1].out_a, b"x");
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchVm {
    /// Distinct decoded programs; lanes index into this.
    decoded: Vec<Arc<DecodedProgram>>,
    /// Lane → index into `decoded`.
    lane_decoded: Vec<u32>,
    /// Per-lane per-round fuel budgets.
    fuel: Vec<u32>,
    /// Struct-of-arrays register file: one column per register.
    regs: RegColumns,
    /// Per-lane halt payloads (`Some` once a lane executed `halt`).
    halted: Vec<Option<Vec<u8>>>,
    /// Per-lane lifetime retired-instruction counts.
    retired: Vec<u64>,
    /// Per-lane parked flags; a parked lane is skipped by [`round`](Self::round).
    parked: Vec<bool>,
}

/// The struct-of-arrays register file: register `r` of lane `l` lives at
/// `slots[r * stride + l]`, so lockstep execution of one opcode across lanes
/// touches one contiguous run per register column instead of
/// `REG_COUNT`-strided scalars. The backing buffer is recycled through the
/// candidate arena (`arena::take_reg_slots` / `put_reg_slots`) so batch
/// growth during enumeration doesn't churn the allocator.
#[derive(Clone, Debug, Default)]
struct RegColumns {
    slots: Vec<u64>,
    /// Column stride == lane capacity (`>= lanes`).
    stride: usize,
    /// Lanes in use.
    lanes: usize,
}

impl RegColumns {
    const MIN_STRIDE: usize = 8;

    /// Adds a zeroed lane, growing the columns when capacity is exhausted,
    /// and returns its index.
    fn push_lane(&mut self) -> usize {
        if self.lanes == self.stride {
            self.grow();
        }
        let lane = self.lanes;
        for r in 0..REG_COUNT {
            self.slots[r * self.stride + lane] = 0;
        }
        self.lanes += 1;
        lane
    }

    /// Doubles the lane capacity, re-laying existing columns into a fresh
    /// (arena-recycled) buffer.
    fn grow(&mut self) {
        let new_stride = (self.stride * 2).max(Self::MIN_STRIDE);
        let mut slots = crate::arena::take_reg_slots(REG_COUNT * new_stride);
        for r in 0..REG_COUNT {
            let src = &self.slots[r * self.stride..r * self.stride + self.lanes];
            slots[r * new_stride..r * new_stride + self.lanes].copy_from_slice(src);
        }
        let old = std::mem::replace(&mut self.slots, slots);
        crate::arena::put_reg_slots(old);
        self.stride = new_stride;
    }

    /// A mutable [`RegLane`] view of one lane — the batch twin of the scalar
    /// machine's register array, dispatched through the same handlers.
    #[inline(always)]
    fn lane_view(&mut self, lane: usize) -> RegLane<'_> {
        RegLane::strided(&mut self.slots, self.stride, lane)
    }

    /// Gathers one lane's registers out of the columns.
    fn snapshot(&self, lane: usize) -> [u64; REG_COUNT] {
        let mut out = [0u64; REG_COUNT];
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.slots[r * self.stride + lane];
        }
        out
    }
}

impl Drop for RegColumns {
    fn drop(&mut self) {
        crate::arena::put_reg_slots(std::mem::take(&mut self.slots));
    }
}

impl BatchVm {
    /// An empty batch.
    pub fn new() -> Self {
        BatchVm::default()
    }

    /// Adds a lane running `program` with `fuel` per round, returning its
    /// lane index. Lanes with byte-identical programs share one decode.
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0` (same contract as [`Machine::with_fuel`]).
    ///
    /// [`Machine::with_fuel`]: crate::machine::Machine::with_fuel
    pub fn push(&mut self, program: &Program, fuel: u32) -> usize {
        match self.decoded.iter().position(|d| d.code() == program.as_bytes()) {
            Some(i) => self.push_lane(i, fuel),
            None => {
                self.decoded.push(Arc::new(DecodedProgram::new(program)));
                self.push_lane(self.decoded.len() - 1, fuel)
            }
        }
    }

    /// [`push`](Self::push) with an already-shared decode (cheap: no
    /// re-decode, byte compare only against already-registered decodes).
    pub fn push_decoded(&mut self, decoded: Arc<DecodedProgram>, fuel: u32) -> usize {
        match self.decoded.iter().position(|d| Arc::ptr_eq(d, &decoded)) {
            Some(i) => self.push_lane(i, fuel),
            None => {
                self.decoded.push(decoded);
                self.push_lane(self.decoded.len() - 1, fuel)
            }
        }
    }

    fn push_lane(&mut self, decoded_index: usize, fuel: u32) -> usize {
        assert!(fuel > 0, "BatchVm lanes require positive fuel");
        self.lane_decoded.push(decoded_index as u32);
        self.fuel.push(fuel);
        self.regs.push_lane();
        self.halted.push(None);
        self.retired.push(0);
        self.parked.push(false);
        self.lane_decoded.len() - 1
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lane_decoded.len()
    }

    /// The shared decode of `lane`'s program (cheap `Arc` clone) — hand it
    /// to the lane's scalar [`Machine`](crate::machine::Machine) twin so
    /// both dispatch from the same table.
    pub fn share_decoded(&self, lane: usize) -> Arc<DecodedProgram> {
        self.decoded[self.lane_decoded[lane] as usize].clone()
    }

    /// A copy of `lane`'s registers, gathered from the per-register columns.
    pub fn regs(&self, lane: usize) -> [u64; REG_COUNT] {
        self.regs.snapshot(lane)
    }

    /// `lane`'s halt payload, if it has halted.
    pub fn halted(&self, lane: usize) -> Option<&[u8]> {
        self.halted[lane].as_deref()
    }

    /// `lane`'s lifetime retired-instruction count.
    pub fn instructions_retired(&self, lane: usize) -> u64 {
        self.retired[lane]
    }

    /// Parks `lane`: subsequent [`round`](Self::round) calls skip it (its
    /// outboxes stay empty and its state freezes). For callers that have
    /// established a lane's future rounds by other means — e.g. the prewarm
    /// executor once a lane reaches a state fixed point — and don't want to
    /// keep burning its fuel.
    pub fn park(&mut self, lane: usize) {
        self.parked[lane] = true;
    }

    /// Steps every lane through one round in lockstep: lane `i` consumes
    /// `ios[i]`'s inboxes and fills its outboxes, exactly as
    /// [`Machine::round`](crate::machine::Machine::round) would with the
    /// same program, fuel, registers, and inputs.
    ///
    /// # Panics
    ///
    /// Panics if `ios.len() != self.width()`.
    pub fn round(&mut self, ios: &mut [RoundIo]) {
        assert_eq!(ios.len(), self.width(), "one RoundIo per lane");
        let n = ios.len();
        // Per-lane round-local state, struct-of-arrays like the lane state.
        let mut pc = vec![0usize; n];
        let mut fuel = vec![0u32; n];
        let mut cur_a = vec![0usize; n];
        let mut cur_b = vec![0usize; n];
        // The divergence mask: indices of lanes still in this round.
        let mut active: Vec<u32> = Vec::with_capacity(n);
        for lane in 0..n {
            fuel[lane] = self.fuel[lane];
            let live = self.halted[lane].is_none()
                && !self.parked[lane]
                && !self.decoded[self.lane_decoded[lane] as usize].is_empty();
            if live {
                active.push(lane as u32);
            }
        }
        goc_core::obs_count_nd!("vm.batch.width", active.len() as u64);
        let mut diverged = 0u64;
        while !active.is_empty() {
            let mut k = 0;
            while k < active.len() {
                let lane = active[k] as usize;
                let d = &self.decoded[self.lane_decoded[lane] as usize];
                // Mirror the scalar loop head: liveness checked, then fuel
                // and the retired counter charged *before* decode/execute.
                if pc[lane] >= d.len() || fuel[lane] == 0 {
                    active.swap_remove(k);
                    if !active.is_empty() {
                        diverged += 1;
                    }
                    continue;
                }
                fuel[lane] -= 1;
                self.retired[lane] += 1;
                let mut step = StepLane {
                    pc: &mut pc[lane],
                    regs: self.regs.lane_view(lane),
                    io: &mut ios[lane],
                    cur_a: &mut cur_a[lane],
                    cur_b: &mut cur_b[lane],
                };
                let outcome = d.step(&mut step);
                match outcome {
                    StepOutcome::Continue => k += 1,
                    StepOutcome::End => {
                        active.swap_remove(k);
                        if !active.is_empty() {
                            diverged += 1;
                        }
                    }
                    StepOutcome::Halt => {
                        self.halted[lane] = Some(ios[lane].out_b.clone());
                        active.swap_remove(k);
                        if !active.is_empty() {
                            diverged += 1;
                        }
                    }
                }
            }
        }
        goc_core::obs_count_nd!("vm.batch.divergence", diverged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::machine::Machine;

    fn lockstep_vs_scalar(programs: &[Program], fuel: u32, rounds: &[(Vec<u8>, Vec<u8>)]) {
        let mut vm = BatchVm::new();
        for p in programs {
            vm.push(p, fuel);
        }
        let mut machines: Vec<Machine> =
            programs.iter().map(|p| Machine::with_fuel(p.clone(), fuel)).collect();
        for (in_a, in_b) in rounds {
            let mut ios: Vec<RoundIo> =
                programs.iter().map(|_| RoundIo::with_inputs(in_a.clone(), in_b.clone())).collect();
            vm.round(&mut ios);
            for (lane, m) in machines.iter_mut().enumerate() {
                let mut io = RoundIo::with_inputs(in_a.clone(), in_b.clone());
                m.round(&mut io);
                assert_eq!(ios[lane].out_a, io.out_a, "lane {lane} out_a");
                assert_eq!(ios[lane].out_b, io.out_b, "lane {lane} out_b");
                assert_eq!(vm.regs(lane), *m.regs(), "lane {lane} regs");
                assert_eq!(vm.halted(lane), m.halted(), "lane {lane} halt");
                assert_eq!(
                    vm.instructions_retired(lane),
                    m.instructions_retired(),
                    "lane {lane} retired"
                );
            }
        }
    }

    #[test]
    fn mixed_batch_matches_scalar_machines() {
        let programs = vec![
            Program::default(),                                      // empty: inert
            Program::assemble(&[Instr::EmitA(b'x')]),                // runs off the end
            Program::assemble(&[Instr::EmitB(b'y'), Instr::Halt]),   // halts round 0
            Program::assemble(&[Instr::Jmp(0)]),                     // burns all fuel
            Program::assemble(&[Instr::EmitA(b'x')]),                // duplicate: shared decode
        ];
        lockstep_vs_scalar(
            &programs,
            64,
            &[(vec![], vec![]), (b"ab".to_vec(), vec![]), (vec![], b"ACK".to_vec())],
        );
    }

    #[test]
    fn duplicate_programs_share_one_decode() {
        let mut vm = BatchVm::new();
        let p = Program::assemble(&[Instr::EmitA(1)]);
        let a = vm.push(&p, 16);
        let b = vm.push(&p, 16);
        assert_eq!(vm.width(), 2);
        assert!(Arc::ptr_eq(&vm.share_decoded(a), &vm.share_decoded(b)));
    }

    #[test]
    fn halted_lane_stays_inert_in_later_rounds() {
        let p = Program::assemble(&[Instr::EmitB(7), Instr::Halt]);
        let mut vm = BatchVm::new();
        vm.push(&p, 16);
        let mut ios = vec![RoundIo::default()];
        vm.round(&mut ios);
        assert_eq!(vm.halted(0), Some([7u8].as_slice()));
        let mut ios = vec![RoundIo::with_inputs(b"z".as_slice(), b"".as_slice())];
        vm.round(&mut ios);
        assert!(ios[0].out_a.is_empty() && ios[0].out_b.is_empty());
        assert_eq!(vm.instructions_retired(0), 2);
    }

    #[test]
    fn with_batch_overrides_and_restores() {
        let outer = enabled();
        with_batch(!outer, || {
            assert_eq!(enabled(), !outer);
            with_batch(outer, || assert_eq!(enabled(), outer));
            assert_eq!(enabled(), !outer);
        });
        assert_eq!(enabled(), outer);
    }

    #[test]
    #[should_panic(expected = "positive fuel")]
    fn zero_fuel_lane_panics() {
        let mut vm = BatchVm::new();
        vm.push(&Program::default(), 0);
    }
}
