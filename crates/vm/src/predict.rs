//! First-round output signatures and the top-K continuation predictor
//! behind predicted-prefix prewarm speculation.
//!
//! The all-empty-inbox chain that `prewarm_deep` speculates covers
//! *burners* — candidates that ignore their inbox — but not *echoers*,
//! whose later rounds depend on what the server and world answered. Those
//! answers are themselves highly predictable: under a fixed goal and server,
//! candidates that produce the same **first-round output** tend to receive
//! the same replies. This module groups programs by the signature of their
//! round-0 outputs (on the canonical all-empty inbox) and records, per
//! class, which round-1 inboxes actually followed in live sessions.
//! Background prewarm workers then additionally speculate the top-K
//! recorded inboxes as *stationary* continuations of the empty first round.
//!
//! **Soundness.** The candidate cache key is a pure function of
//! `(program, fuel, inbox history)`, so a speculated entry is value-identical
//! to what live execution would compute for that history — a wrong
//! prediction can only *miss*, never serve wrong data. The predictor
//! therefore only chooses *which* value-identical entries get built.
//!
//! **Boundedness.** The class table is capped ([`MAX_CLASSES`] classes ×
//! [`MAX_REPLIES`] distinct replies), speculation is capped per prewarm
//! call, and every live second round is scored against the prediction:
//! the `vm.prewarm.mispredict` counter (process scope, outside the
//! deterministic trace) proves wasted speculative work stays bounded.
//!
//! Determinism: predictions depend on observation order, which varies with
//! scheduling — that is fine precisely because predictions only steer cache
//! warming, never results. All counters here are `obs_count_nd!`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Bound on distinct first-output classes tracked.
const MAX_CLASSES: usize = 4096;

/// Bound on distinct continuations remembered per class.
const MAX_REPLIES: usize = 8;

/// One first-output class: the distinct `(in_a, in_b)` continuations seen
/// after it, with observation counts, in first-seen order.
#[derive(Clone, Debug, Default)]
struct ClassStats {
    replies: Vec<(Vec<u8>, Vec<u8>, u64)>,
}

#[derive(Default)]
struct Predictor {
    classes: HashMap<u64, ClassStats>,
}

fn predictor() -> &'static Mutex<Predictor> {
    static P: OnceLock<Mutex<Predictor>> = OnceLock::new();
    P.get_or_init(|| Mutex::new(Predictor::default()))
}

static OBSERVED: AtomicU64 = AtomicU64::new(0);
static MISPREDICTS: AtomicU64 = AtomicU64::new(0);
static SPECULATED: AtomicU64 = AtomicU64::new(0);

/// FNV-1a over both outboxes with length prefixes — the first-output class
/// key. Stable across threads and sessions (pure function of the bytes).
pub fn signature(out_a: &[u8], out_b: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in (bytes.len() as u32).to_le_bytes().into_iter().chain(bytes.iter().copied()) {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(out_a);
    eat(out_b);
    h
}

/// How many continuations per class the prewarm workers speculate:
/// `GOC_PREWARM_TOPK`, default 2, clamped to `0..=8` (0 disables
/// predicted-prefix speculation). Read once and latched.
pub fn top_k() -> usize {
    static K: OnceLock<usize> = OnceLock::new();
    *K.get_or_init(|| {
        std::env::var("GOC_PREWARM_TOPK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(2)
            .min(MAX_REPLIES)
    })
}

/// The top-`k` continuations recorded for class `sig`, most-observed first
/// (ties broken by first-seen order, so the ranking is deterministic for a
/// given observation sequence).
pub fn predict(sig: u64, k: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    if k == 0 {
        return Vec::new();
    }
    let p = predictor().lock().unwrap_or_else(|e| e.into_inner());
    let Some(class) = p.classes.get(&sig) else { return Vec::new() };
    let mut order: Vec<usize> = (0..class.replies.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(class.replies[i].2), i));
    order
        .into_iter()
        .take(k)
        .map(|i| (class.replies[i].0.clone(), class.replies[i].1.clone()))
        .collect()
}

/// Records the actual round-1 inbox that followed a live candidate's first
/// round: scores it against the class's current top-K (counting a
/// mispredict when the class had recorded continuations but none of the
/// speculated ones matched), then folds it into the class statistics. The
/// all-empty continuation is scored but not learned — the empty chain is
/// always speculated unconditionally.
pub fn record_outcome(sig: u64, in_a: &[u8], in_b: &[u8]) {
    let k = top_k();
    let mut p = predictor().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(class) = p.classes.get(&sig) {
        if !class.replies.is_empty() && k > 0 {
            let mut order: Vec<usize> = (0..class.replies.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(class.replies[i].2), i));
            let hit = order
                .iter()
                .take(k)
                .any(|&i| class.replies[i].0 == in_a && class.replies[i].1 == in_b);
            if hit {
                goc_core::obs_count_nd!("vm.prewarm.predict_hit", 1u64);
            } else {
                MISPREDICTS.fetch_add(1, Ordering::Relaxed);
                goc_core::obs_count_nd!("vm.prewarm.mispredict", 1u64);
            }
        }
    }
    if in_a.is_empty() && in_b.is_empty() {
        return;
    }
    OBSERVED.fetch_add(1, Ordering::Relaxed);
    let at_capacity = p.classes.len() >= MAX_CLASSES && !p.classes.contains_key(&sig);
    if at_capacity {
        return;
    }
    let class = p.classes.entry(sig).or_default();
    match class.replies.iter_mut().find(|(a, b, _)| a == in_a && b == in_b) {
        Some(reply) => reply.2 += 1,
        None => {
            if class.replies.len() < MAX_REPLIES {
                class.replies.push((in_a.to_vec(), in_b.to_vec(), 1));
            }
        }
    }
}

/// Accounting hook for the prewarm executor: `chains` predicted-prefix
/// chains were speculated.
pub fn note_speculated(chains: u64) {
    SPECULATED.fetch_add(chains, Ordering::Relaxed);
}

/// Lifetime predictor statistics (process scope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// First-output classes currently tracked.
    pub classes: u64,
    /// Non-empty continuations observed (after capacity drops).
    pub observed: u64,
    /// Live second rounds whose inbox none of the top-K predictions matched.
    pub mispredicts: u64,
    /// Predicted-prefix chains handed to the prewarm executor.
    pub speculated: u64,
}

/// Current [`PredictStats`].
pub fn stats() -> PredictStats {
    let p = predictor().lock().unwrap_or_else(|e| e.into_inner());
    PredictStats {
        classes: p.classes.len() as u64,
        observed: OBSERVED.load(Ordering::Relaxed),
        mispredicts: MISPREDICTS.load(Ordering::Relaxed),
        speculated: SPECULATED.load(Ordering::Relaxed),
    }
}

/// Clears all classes and counters — benches and tests isolate runs with
/// this, exactly like `cache::clear`.
pub fn reset() {
    let mut p = predictor().lock().unwrap_or_else(|e| e.into_inner());
    p.classes.clear();
    OBSERVED.store(0, Ordering::Relaxed);
    MISPREDICTS.store(0, Ordering::Relaxed);
    SPECULATED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The predictor is process-global; tests serialize on this.
    fn isolated() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        guard
    }

    #[test]
    fn signature_separates_outputs_and_channels() {
        let _g = isolated();
        assert_ne!(signature(b"x", b""), signature(b"", b"x"));
        assert_ne!(signature(b"ab", b"c"), signature(b"a", b"bc"));
        assert_eq!(signature(b"hi", b"yo"), signature(b"hi", b"yo"));
    }

    #[test]
    fn predict_ranks_by_count_with_stable_ties() {
        let _g = isolated();
        let sig = signature(b"q", b"");
        record_outcome(sig, b"first", b"");
        record_outcome(sig, b"second", b"");
        record_outcome(sig, b"second", b"");
        record_outcome(sig, b"third", b"");
        let top = predict(sig, 2);
        assert_eq!(top[0].0, b"second");
        // "first" and "third" tie at one observation; first-seen wins.
        assert_eq!(top[1].0, b"first");
    }

    #[test]
    fn mispredicts_count_only_when_class_has_history() {
        let _g = isolated();
        let sig = signature(b"m", b"");
        // No history yet: nothing to mispredict.
        record_outcome(sig, b"a", b"");
        assert_eq!(stats().mispredicts, 0);
        // "a" is now the (only) prediction; "b" misses it.
        record_outcome(sig, b"b", b"");
        assert_eq!(stats().mispredicts, 1);
        // "a" is a hit.
        record_outcome(sig, b"a", b"");
        assert_eq!(stats().mispredicts, 1);
    }

    #[test]
    fn empty_continuations_are_scored_but_not_learned() {
        let _g = isolated();
        let sig = signature(b"e", b"");
        record_outcome(sig, &[], &[]);
        assert!(predict(sig, 8).is_empty(), "empty inbox must not be learned");
        record_outcome(sig, b"z", b"");
        // The class had no replies when the empty round arrived: no
        // mispredict; but now "z" is recorded and an empty round misses it.
        assert_eq!(stats().mispredicts, 0);
        record_outcome(sig, &[], &[]);
        assert_eq!(stats().mispredicts, 1);
    }

    #[test]
    fn reply_table_is_bounded() {
        let _g = isolated();
        let sig = signature(b"bound", b"");
        for i in 0..(MAX_REPLIES as u8 + 4) {
            record_outcome(sig, &[i + 1], b"");
        }
        assert!(predict(sig, MAX_REPLIES + 4).len() <= MAX_REPLIES);
    }
}
