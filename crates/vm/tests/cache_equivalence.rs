//! The candidate-evaluation cache must be *unobservable*: a cached `VmUser`
//! produces exactly the outputs and halt behaviour of an uncached one, for
//! arbitrary programs and input histories — the soundness property behind
//! memoising Levin-search revisits. Checked by the seeded `goc-testkit`
//! harness.

use goc_core::msg::{Message, UserIn};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, UserStrategy};
use goc_testkit::{check, gens, prop_assert_eq};
use goc_vm::adapter::VmUser;
use goc_vm::program::Program;

/// Runs `user` over `inputs`, collecting per-round outputs and halt states.
fn drive(
    mut user: VmUser,
    inputs: &[(Vec<u8>, Vec<u8>)],
) -> Vec<(Vec<u8>, Vec<u8>, Option<Vec<u8>>)> {
    let mut rng = GocRng::seed_from_u64(0);
    let mut out = Vec::new();
    for (round, (a, b)) in inputs.iter().enumerate() {
        let mut ctx = StepCtx::new(round as u64, &mut rng);
        let o = user.step(
            &mut ctx,
            &UserIn {
                from_server: Message::from_bytes(a.clone()),
                from_world: Message::from_bytes(b.clone()),
            },
        );
        out.push((
            o.to_server.as_bytes().to_vec(),
            o.to_world.as_bytes().to_vec(),
            UserStrategy::halted(&user).map(|h| h.output.as_bytes().to_vec()),
        ));
    }
    out
}

/// Cached and uncached users are round-for-round identical, and a second
/// cached run (now warm) still matches.
#[test]
fn cached_user_is_observably_identical_to_uncached() {
    let round_inputs = gens::tuple2(gens::bytes(0, 6), gens::bytes(0, 6));
    check(
        "cached_user_is_observably_identical_to_uncached",
        gens::tuple2(gens::bytes(0, 24), gens::vec_of(round_inputs, 1, 8)),
        |(code, inputs)| {
            let program = Program::from_bytes(code.clone());
            let fresh = |cached: bool| {
                VmUser::with_fuel(program.clone(), 64).with_cache_enabled(cached)
            };
            let uncached = drive(fresh(false), inputs);
            let cold = drive(fresh(true), inputs);
            let warm = drive(fresh(true), inputs);
            prop_assert_eq!(&cold, &uncached, "cold cached run diverged");
            prop_assert_eq!(&warm, &uncached, "warm cached run diverged");
            Ok(())
        },
    );
}

/// Re-running the same interaction hits the cache (the memoisation actually
/// engages — this guards against silently caching nothing).
#[test]
fn repeated_interactions_hit_the_cache() {
    let program = Program::from_bytes(vec![0x01, b'q', 0x02, b'r']);
    let inputs: Vec<(Vec<u8>, Vec<u8>)> =
        (0..5).map(|i| (vec![i as u8], vec![])).collect();
    let _ = drive(VmUser::new(program.clone()).with_cache_enabled(true), &inputs);
    goc_vm::cache::reset_stats();
    let _ = drive(VmUser::new(program).with_cache_enabled(true), &inputs);
    let stats = goc_vm::cache::stats();
    assert!(stats.hits >= 5, "second identical run must be served from cache: {stats:?}");
}
