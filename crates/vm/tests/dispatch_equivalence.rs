//! The dispatch table must be *unobservable*: for any program, fuel, and
//! inbox history, the table-dispatch core (`GOC_DISPATCH=1`), the scalar
//! `match` loop (`GOC_DISPATCH=0`), and the lockstep batch interpreter
//! produce byte-identical outboxes, halt payloads, registers, and
//! retired-instruction counts. Checked by the seeded `goc-testkit` harness
//! over random programs × random inboxes × random fuel.

use goc_core::msg::{Message, UserIn};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, UserStrategy};
use goc_testkit::{check, gens, prop_assert_eq};
use goc_vm::adapter::VmUser;
use goc_vm::batch::BatchVm;
use goc_vm::dispatch::with_dispatch;
use goc_vm::instr::REG_COUNT;
use goc_vm::machine::{Machine, RoundIo};
use goc_vm::program::Program;

/// Everything observable about one machine after one round.
type RoundState = (Vec<u8>, Vec<u8>, Option<Vec<u8>>, [u64; REG_COUNT], u64);

/// Drives a scalar [`Machine`] over `rounds` under the given dispatch mode.
fn drive_scalar(
    table: bool,
    p: &Program,
    fuel: u32,
    rounds: &[(Vec<u8>, Vec<u8>)],
) -> Vec<RoundState> {
    with_dispatch(table, || {
        let mut m = Machine::with_fuel(p.clone(), fuel);
        rounds
            .iter()
            .map(|(a, b)| {
                let mut io = RoundIo::with_inputs(a.clone(), b.clone());
                m.round(&mut io);
                (
                    io.out_a,
                    io.out_b,
                    m.halted().map(<[u8]>::to_vec),
                    *m.regs(),
                    m.instructions_retired(),
                )
            })
            .collect()
    })
}

/// Drives every program as one lane of a [`BatchVm`] over the same rounds.
fn drive_batch(
    programs: &[Program],
    fuel: u32,
    rounds: &[(Vec<u8>, Vec<u8>)],
) -> Vec<Vec<RoundState>> {
    let mut vm = BatchVm::new();
    for p in programs {
        vm.push(p, fuel);
    }
    let mut out: Vec<Vec<RoundState>> = vec![Vec::new(); programs.len()];
    for (a, b) in rounds {
        let mut ios: Vec<RoundIo> =
            programs.iter().map(|_| RoundIo::with_inputs(a.clone(), b.clone())).collect();
        vm.round(&mut ios);
        for (lane, states) in out.iter_mut().enumerate() {
            states.push((
                ios[lane].out_a.clone(),
                ios[lane].out_b.clone(),
                vm.halted(lane).map(<[u8]>::to_vec),
                vm.regs(lane),
                vm.instructions_retired(lane),
            ));
        }
    }
    out
}

/// Table dispatch ≡ `match` dispatch ≡ batch execution, observably, for
/// random programs × random inboxes × random fuel.
#[test]
fn table_match_and_batch_dispatch_agree() {
    let round_inputs = gens::tuple2(gens::bytes(0, 6), gens::bytes(0, 6));
    let trial = gens::tuple3(
        gens::vec_of(gens::bytes(0, 14), 1, 6),
        gens::u32_in(8, 512),
        gens::vec_of(round_inputs, 1, 8),
    );
    check("table_match_and_batch_dispatch_agree", trial, |(codes, fuel, rounds)| {
        let programs: Vec<Program> =
            codes.iter().map(|c| Program::from_bytes(c.clone())).collect();
        let batched = drive_batch(&programs, *fuel, rounds);
        for (i, p) in programs.iter().enumerate() {
            let via_match = drive_scalar(false, p, *fuel, rounds);
            let via_table = drive_scalar(true, p, *fuel, rounds);
            prop_assert_eq!(
                &via_table,
                &via_match,
                "table vs match diverged on program {i} ({:?})",
                p.as_bytes()
            );
            prop_assert_eq!(
                &batched[i],
                &via_match,
                "batch vs match diverged on program {i} ({:?})",
                p.as_bytes()
            );
        }
        Ok(())
    });
}

/// Drives a [`VmUser`] over `inputs`, collecting per-round outputs and halts.
fn drive_user(user: &mut dyn UserStrategy, inputs: &[(Vec<u8>, Vec<u8>)]) -> Vec<RoundState> {
    let mut rng = GocRng::seed_from_u64(0);
    let mut out = Vec::new();
    for (round, (a, b)) in inputs.iter().enumerate() {
        let mut ctx = StepCtx::new(round as u64, &mut rng);
        let o = user.step(
            &mut ctx,
            &UserIn {
                from_server: Message::from_bytes(a.clone()),
                from_world: Message::from_bytes(b.clone()),
            },
        );
        out.push((
            o.to_server.as_bytes().to_vec(),
            o.to_world.as_bytes().to_vec(),
            user.halted().map(|h| h.output.as_bytes().to_vec()),
            [0u64; REG_COUNT], // registers may lag under the cache; not compared here
            0,
        ));
    }
    out
}

/// The flag is also inert one layer up: a mounted [`VmUser`] (cache on and
/// off) steps identically whatever `GOC_DISPATCH` says.
#[test]
fn vm_user_is_invariant_across_dispatch_modes() {
    let round_inputs = gens::tuple2(gens::bytes(0, 5), gens::bytes(0, 5));
    let trial = gens::tuple3(
        gens::bytes(0, 12),
        gens::u32_in(16, 256),
        gens::vec_of(round_inputs, 1, 10),
    );
    check("vm_user_is_invariant_across_dispatch_modes", trial, |(code, fuel, inputs)| {
        for cache in [false, true] {
            let run = |table: bool| {
                with_dispatch(table, || {
                    let program = Program::from_bytes(code.clone());
                    let mut user =
                        VmUser::with_fuel(program, *fuel).with_cache_enabled(cache);
                    drive_user(&mut user, inputs)
                })
            };
            let via_match = run(false);
            let via_table = run(true);
            prop_assert_eq!(
                &via_table,
                &via_match,
                "VmUser diverged across dispatch modes (cache={cache})"
            );
        }
        Ok(())
    });
}
