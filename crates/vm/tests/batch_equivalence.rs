//! The batch interpreter must be *unobservable*: a lane of [`BatchVm`]
//! stepping in lockstep with other candidates produces exactly the
//! registers, outputs, halt behaviour, and retired-instruction counts of a
//! scalar [`Machine`] running the same program alone — for arbitrary
//! programs (self-jump spinners, early halts, empty inboxes) and input
//! histories. This is the soundness property behind `GOC_BATCH`: flipping
//! the flag may only change speed, never a trace. Checked by the seeded
//! `goc-testkit` harness.

use goc_core::msg::{Message, UserIn};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, UserStrategy};
use goc_testkit::{check, gens, prop_assert_eq};
use goc_vm::adapter::VmUser;
use goc_vm::batch;
use goc_vm::machine::{DecodedProgram, Machine, RoundIo};
use goc_vm::program::Program;
use goc_vm::BatchVm;

const FUEL: u32 = 64;

/// Per-lane observable state after a round.
type LaneObs = (Vec<u8>, Vec<u8>, Vec<u64>, Option<Vec<u8>>, u64);

/// A generator of small program batches with enough structure to hit every
/// divergence path: codes are biased toward low opcodes so `Halt` (0),
/// jumps (10/11), and emits all occur, and the batch may contain duplicate
/// programs (exercising the shared-decode dedupe).
fn batch_gen() -> gens::Gen<(Vec<Vec<u8>>, Vec<(Vec<u8>, Vec<u8>)>)> {
    let code = gens::vec_of(gens::u8_in(0, 16), 0, 12);
    let round_inputs = gens::tuple2(gens::bytes(0, 5), gens::bytes(0, 5));
    gens::tuple2(gens::vec_of(code, 1, 6), gens::vec_of(round_inputs, 1, 6))
}

/// Every lane of a mixed batch matches a scalar machine run in isolation,
/// round for round — including lanes that halt or exhaust fuel mid-batch
/// and must sit inert while the rest keep stepping.
#[test]
fn batch_lanes_match_isolated_scalar_machines() {
    check("batch_lanes_match_isolated_scalar_machines", batch_gen(), |(codes, inputs)| {
        let mut vm = BatchVm::new();
        for code in codes {
            vm.push(&Program::from_bytes(code.clone()), FUEL);
        }
        let n = vm.width();
        let mut scalars: Vec<Machine> = (0..n)
            .map(|lane| {
                Machine::with_fuel(Program::from_bytes(vm.share_decoded(lane).code().to_vec()), FUEL)
            })
            .collect();
        let mut batch_ios: Vec<RoundIo> = (0..n).map(|_| RoundIo::default()).collect();
        let mut scalar_ios: Vec<RoundIo> = (0..n).map(|_| RoundIo::default()).collect();
        for (a, b) in inputs {
            for io in batch_ios.iter_mut().chain(scalar_ios.iter_mut()) {
                io.set_inputs(a, b);
            }
            vm.round(&mut batch_ios);
            for (lane, m) in scalars.iter_mut().enumerate() {
                m.round(&mut scalar_ios[lane]);
                let got: LaneObs = (
                    batch_ios[lane].out_a.clone(),
                    batch_ios[lane].out_b.clone(),
                    vm.regs(lane).to_vec(),
                    vm.halted(lane).map(<[u8]>::to_vec),
                    vm.instructions_retired(lane),
                );
                let want: LaneObs = (
                    scalar_ios[lane].out_a.clone(),
                    scalar_ios[lane].out_b.clone(),
                    m.regs().to_vec(),
                    m.halted().map(|h| h.to_vec()),
                    m.instructions_retired(),
                );
                prop_assert_eq!(&got, &want, "lane {lane} diverged from scalar machine");
            }
        }
        Ok(())
    });
}

/// The predecoded single-machine path (`round_decoded`) is bit-identical
/// to the byte-at-a-time `round` — the one-lane core of the batch claim.
#[test]
fn round_decoded_matches_round() {
    let code = gens::vec_of(gens::u8_in(0, 16), 0, 12);
    let round_inputs = gens::tuple2(gens::bytes(0, 5), gens::bytes(0, 5));
    check(
        "round_decoded_matches_round",
        gens::tuple2(code, gens::vec_of(round_inputs, 1, 6)),
        |(code, inputs)| {
            let program = Program::from_bytes(code.clone());
            let decoded = DecodedProgram::new(&program);
            let mut scalar = Machine::with_fuel(program.clone(), FUEL);
            let mut pre = Machine::with_fuel(program.clone(), FUEL);
            let mut scalar_io = RoundIo::default();
            let mut pre_io = RoundIo::default();
            for (a, b) in inputs {
                scalar_io.set_inputs(a, b);
                pre_io.set_inputs(a, b);
                scalar.round(&mut scalar_io);
                pre.round_decoded(&decoded, &mut pre_io);
                prop_assert_eq!(&pre_io.out_a, &scalar_io.out_a, "out_a diverged");
                prop_assert_eq!(&pre_io.out_b, &scalar_io.out_b, "out_b diverged");
                prop_assert_eq!(pre.regs(), scalar.regs(), "registers diverged");
                prop_assert_eq!(pre.halted(), scalar.halted(), "halt state diverged");
                prop_assert_eq!(
                    pre.instructions_retired(),
                    scalar.instructions_retired(),
                    "retired count diverged"
                );
            }
            Ok(())
        },
    );
}

/// Runs `user` over `inputs`, collecting per-round outputs and halt states.
fn drive(
    mut user: VmUser,
    inputs: &[(Vec<u8>, Vec<u8>)],
) -> Vec<(Vec<u8>, Vec<u8>, Option<Vec<u8>>)> {
    let mut rng = GocRng::seed_from_u64(0);
    let mut out = Vec::new();
    for (round, (a, b)) in inputs.iter().enumerate() {
        let mut ctx = StepCtx::new(round as u64, &mut rng);
        let o = user.step(
            &mut ctx,
            &UserIn {
                from_server: Message::from_bytes(a.clone()),
                from_world: Message::from_bytes(b.clone()),
            },
        );
        out.push((
            o.to_server.as_bytes().to_vec(),
            o.to_world.as_bytes().to_vec(),
            UserStrategy::halted(&user).map(|h| h.output.as_bytes().to_vec()),
        ));
    }
    out
}

/// At the adapter level, `GOC_BATCH` on vs off is unobservable for both
/// cached and uncached users: arena-backed buffers and predecoded dispatch
/// may only change allocation traffic, never a step's outputs.
#[test]
fn vmuser_is_identical_across_batch_modes() {
    let round_inputs = gens::tuple2(gens::bytes(0, 6), gens::bytes(0, 6));
    check(
        "vmuser_is_identical_across_batch_modes",
        gens::tuple2(gens::bytes(0, 24), gens::vec_of(round_inputs, 1, 8)),
        |(code, inputs)| {
            let program = Program::from_bytes(code.clone());
            for cached in [false, true] {
                let fresh =
                    || VmUser::with_fuel(program.clone(), FUEL).with_cache_enabled(cached);
                let scalar = batch::with_batch(false, || drive(fresh(), inputs));
                let batched = batch::with_batch(true, || drive(fresh(), inputs));
                prop_assert_eq!(
                    &batched,
                    &scalar,
                    "batch-mode user diverged (cache enabled: {cached})"
                );
            }
            Ok(())
        },
    );
}
