//! The background prewarm must be *unobservable*: cache entries it fills
//! (including fixed-point-replicated ones) are value-identical to what
//! scalar execution would compute for the same `(program, fuel, prefix)`,
//! and [`ProgramEnumerator::batch`] produces behaviourally identical
//! candidates whatever the `GOC_PREWARM` × `GOC_THREADS` setting. Checked
//! by the seeded `goc-testkit` harness.

use goc_core::enumeration::StrategyEnumerator;
use goc_core::msg::{Message, UserIn};
use goc_core::par::{with_prewarm, with_thread_count};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, UserStrategy};
use goc_testkit::{check, gens, prop_assert_eq};
use goc_vm::adapter::{prewarm_deep, VmUser};
use goc_vm::cache;
use goc_vm::program::Program;
use goc_vm::ProgramEnumerator;

/// Drives a user over `inputs`, collecting per-round outputs and halts.
fn drive(
    user: &mut dyn UserStrategy,
    inputs: &[(Vec<u8>, Vec<u8>)],
) -> Vec<(Vec<u8>, Vec<u8>, Option<Vec<u8>>)> {
    let mut rng = GocRng::seed_from_u64(0);
    let mut out = Vec::new();
    for (round, (a, b)) in inputs.iter().enumerate() {
        let mut ctx = StepCtx::new(round as u64, &mut rng);
        let o = user.step(
            &mut ctx,
            &UserIn {
                from_server: Message::from_bytes(a.clone()),
                from_world: Message::from_bytes(b.clone()),
            },
        );
        out.push((
            o.to_server.as_bytes().to_vec(),
            o.to_world.as_bytes().to_vec(),
            user.halted().map(|h| h.output.as_bytes().to_vec()),
        ));
    }
    out
}

/// Every entry `prewarm_deep` records along a program's empty-prefix chain
/// — executed or replicated from a detected fixed point — equals what the
/// scalar machine computes for that round, for random programs and fuels.
#[test]
fn prewarm_entries_match_scalar_execution() {
    let trial = gens::tuple3(
        gens::vec_of(gens::bytes(0, 12), 1, 5),
        gens::u32_in(16, 512),
        gens::usize_in(1, 24),
    );
    check("prewarm_entries_match_scalar_execution", trial, |(codes, fuel, depth)| {
        let programs: Vec<Program> =
            codes.iter().map(|c| Program::from_bytes(c.clone())).collect();
        let mut users: Vec<VmUser> = programs
            .iter()
            .map(|p| VmUser::with_fuel(p.clone(), *fuel).with_cache_enabled(true))
            .collect();
        goc_core::par::with_prewarm(true, || prewarm_deep(users.iter_mut(), *depth));
        let empty_rounds = vec![(Vec::new(), Vec::new()); *depth];
        for p in &programs {
            let mut scalar = VmUser::with_fuel(p.clone(), *fuel).with_cache_enabled(false);
            let truth = drive(&mut scalar, &empty_rounds);
            let mut prefix = cache::PREFIX_EMPTY;
            for (r, (out_a, out_b, halted)) in truth.iter().enumerate() {
                prefix = cache::extend_prefix(prefix, &[], &[]);
                let key = cache::RoundKey {
                    program_hash: cache::program_hash(p.as_bytes()),
                    fuel: *fuel,
                    prefix_hash: prefix,
                };
                let entry = cache::lookup(&key, p.as_bytes());
                let Some(entry) = entry else {
                    return Err(goc_testkit::CaseError::fail(format!(
                        "round {r} of {:?} missing from the prewarmed chain",
                        p.as_bytes()
                    )));
                };
                prop_assert_eq!(&entry.out_a, out_a, "out_a at round {r}");
                prop_assert_eq!(&entry.out_b, out_b, "out_b at round {r}");
                prop_assert_eq!(&entry.halted, halted, "halt at round {r}");
                if entry.halted.is_some() {
                    break;
                }
            }
        }
        Ok(())
    });
}

/// Candidates a prewarmed batch hands out behave exactly like scalar ones:
/// live inputs that *don't* match the speculated empty-inbox history miss
/// the speculative entries and are computed correctly anyway.
#[test]
fn prewarmed_candidates_serve_nonempty_histories_correctly() {
    let round_inputs = gens::tuple2(gens::bytes(0, 5), gens::bytes(0, 5));
    let trial = gens::tuple3(
        gens::bytes(0, 12),
        gens::u32_in(16, 256),
        gens::vec_of(round_inputs, 1, 10),
    );
    check("prewarmed_candidates_serve_nonempty_histories_correctly", trial, |(code, fuel, inputs)| {
        let program = Program::from_bytes(code.clone());
        let mut warmed = VmUser::with_fuel(program.clone(), *fuel).with_cache_enabled(true);
        goc_core::par::with_prewarm(true, || prewarm_deep([&mut warmed], 16));
        let mut scalar = VmUser::with_fuel(program, *fuel).with_cache_enabled(false);
        let truth = drive(&mut scalar, inputs);
        let got = drive(&mut warmed, inputs);
        prop_assert_eq!(&got, &truth, "prewarmed candidate diverged on a live history");
        Ok(())
    });
}

/// Predicted-prefix speculation records value-identical entries: teach the
/// predictor a continuation for an echoer's first-output class, prewarm,
/// and every entry along the speculated stationary chain must equal what
/// scalar execution computes for that exact history.
#[test]
fn predicted_prefix_entries_match_scalar_execution() {
    use goc_vm::instr::{Chan, Instr};
    use goc_vm::machine::{Machine, RoundIo};
    use goc_vm::predict;

    // An echoer with a distinctive first round: says "Q7", then copies the
    // server's reply back every round. Its later rounds depend on the inbox,
    // so the empty chain alone cannot warm it against a talkative peer.
    let program = Program::assemble(&[
        Instr::EmitA(b'Q'),
        Instr::EmitA(b'7'),
        Instr::CopyA(Chan::A),
        Instr::EndRound,
    ]);
    let fuel = 64u32;
    let depth = 8usize;
    // The class key is the signature of the round-0 outputs on the
    // canonical all-empty inbox.
    let sig = {
        let mut m = Machine::with_fuel(program.clone(), fuel);
        let mut io = RoundIo::default();
        m.round(&mut io);
        predict::signature(&io.out_a, &io.out_b)
    };
    // Teach the predictor (repeatedly, so concurrent tests recording into a
    // colliding class cannot push this continuation out of the top-K).
    for _ in 0..5 {
        predict::record_outcome(sig, b"ping", b"");
    }
    let mut warmed = VmUser::with_fuel(program.clone(), fuel).with_cache_enabled(true);
    with_prewarm(true, || prewarm_deep([&mut warmed], depth));
    // Ground truth: a scalar user over the speculated history — one empty
    // round, then the stationary predicted inbox.
    let mut inputs = vec![(Vec::new(), Vec::new())];
    inputs.extend(std::iter::repeat_n((b"ping".to_vec(), Vec::new()), depth - 1));
    let mut scalar = VmUser::with_fuel(program.clone(), fuel).with_cache_enabled(false);
    let truth = drive(&mut scalar, &inputs);
    let mut prefix = cache::PREFIX_EMPTY;
    for (r, ((in_a, in_b), (out_a, out_b, halted))) in inputs.iter().zip(&truth).enumerate() {
        prefix = cache::extend_prefix(prefix, in_a, in_b);
        let key = cache::RoundKey {
            program_hash: cache::program_hash(program.as_bytes()),
            fuel,
            prefix_hash: prefix,
        };
        let entry = cache::lookup(&key, program.as_bytes())
            .unwrap_or_else(|| panic!("round {r} of the predicted chain is not memoised"));
        assert_eq!(&entry.out_a, out_a, "out_a at round {r}");
        assert_eq!(&entry.out_b, out_b, "out_b at round {r}");
        assert_eq!(&entry.halted, halted, "halt at round {r}");
    }
    // Serving the warmed user that exact history must also be correct.
    let got = drive(&mut warmed, &inputs);
    assert_eq!(got, truth, "warmed candidate diverged on the predicted history");
}

/// `ProgramEnumerator::batch` (with `prefetch`) yields behaviourally
/// identical candidates across `GOC_PREWARM` off/on × `GOC_THREADS` 1/4.
#[test]
fn batch_is_invariant_across_prewarm_and_threads() {
    let round_inputs = gens::tuple2(gens::bytes(0, 4), gens::bytes(0, 4));
    let trial = gens::tuple3(
        gens::vec_of(gens::usize_in(0, 38), 1, 10),
        gens::u32_in(16, 256),
        gens::vec_of(round_inputs, 1, 10),
    );
    check("batch_is_invariant_across_prewarm_and_threads", trial, |(indices, fuel, inputs)| {
        let run = |threads: usize, prewarm: bool| {
            with_thread_count(threads, || {
                with_prewarm(prewarm, || {
                    goc_vm::batch::with_batch(true, || {
                        let class = ProgramEnumerator::over(vec![0x0b, 0x01, b'h'])
                            .with_max_len(3)
                            .with_fuel(*fuel)
                            .with_cache(true);
                        class.prefetch(indices);
                        class
                            .batch(indices)
                            .into_iter()
                            .map(|u| u.map(|mut u| drive(u.as_mut(), inputs)))
                            .collect::<Vec<_>>()
                    })
                })
            })
        };
        let base = run(1, false);
        for (threads, prewarm) in [(1, true), (4, false), (4, true)] {
            let got = run(threads, prewarm);
            prop_assert_eq!(
                &got,
                &base,
                "batch diverged at threads={threads} prewarm={prewarm}"
            );
        }
        Ok(())
    });
}
