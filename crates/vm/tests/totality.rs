//! Property tests for the VM's central invariants: *every* byte string is a
//! runnable program, and enumeration is a bijection onto the class. Checked
//! by the in-tree `goc-testkit` harness — seeded, shrinking, zero external
//! dependencies.

use goc_testkit::{check, gens, prop_assert, prop_assert_eq};
use goc_vm::enumerate::ProgramEnumerator;
use goc_vm::machine::{Machine, RoundIo};
use goc_vm::program::Program;

/// Exhaustive totality: every program of length ≤ 2 over the full byte
/// alphabet (65 793 programs) runs three rounds without panicking and
/// within its fuel bound. Combined with the random long-program property
/// below, this nails the "every byte string is a strategy" guarantee.
#[test]
fn exhaustive_short_programs_run_safely() {
    let run = |code: Vec<u8>| {
        let mut m = Machine::with_fuel(Program::from_bytes(code), 64);
        for _ in 0..3 {
            let mut io = RoundIo::with_inputs(vec![1, 2, 3], vec![9]);
            m.round(&mut io);
        }
        assert!(m.instructions_retired() <= 3 * 64);
    };
    run(vec![]);
    for a in 0..=255u8 {
        run(vec![a]);
        for b in 0..=255u8 {
            run(vec![a, b]);
        }
    }
}

/// Any byte string decodes and runs for several rounds without panic,
/// and each round retires at most `fuel` instructions.
#[test]
fn any_bytes_run_safely() {
    check(
        "any_bytes_run_safely",
        gens::tuple3(gens::bytes(0, 64), gens::bytes(0, 16), gens::bytes(0, 16)),
        |(code, in_a, in_b)| {
            let mut m = Machine::with_fuel(Program::from_bytes(code.clone()), 128);
            for _ in 0..5 {
                let mut io = RoundIo::with_inputs(in_a.clone(), in_b.clone());
                m.round(&mut io);
            }
            prop_assert!(m.instructions_retired() <= 5 * 128);
            Ok(())
        },
    );
}

/// The canonical decoding consumes exactly the program bytes.
#[test]
fn canonical_decode_consumes_all() {
    check("canonical_decode_consumes_all", gens::bytes(0, 64), |code: &Vec<u8>| {
        let p = Program::from_bytes(code.clone());
        let mut consumed = 0usize;
        let mut pos = 0usize;
        while pos < p.len() {
            let (_, used) = p.decode_at(pos);
            pos += used.min(p.len() - pos + used); // used may overrun the tail
            consumed += 1;
            prop_assert!(consumed <= code.len() + 1, "decoding must terminate");
        }
        Ok(())
    });
}

/// program(index_of(p)) == p over a restricted alphabet.
#[test]
fn enumeration_roundtrips() {
    check(
        "enumeration_roundtrips",
        gens::vec_of(gens::u8_in(0, 4), 0, 8),
        |bytes: &Vec<u8>| {
            let e = ProgramEnumerator::over(vec![0u8, 1, 2, 3]);
            let p = Program::from_bytes(bytes.clone());
            let idx = e.index_of(&p).expect("program writable in alphabet");
            prop_assert_eq!(e.program(idx), p);
            Ok(())
        },
    );
}

/// Enumeration is monotone in length: longer programs have larger indices.
#[test]
fn enumeration_is_length_monotone() {
    check(
        "enumeration_is_length_monotone",
        gens::tuple2(gens::usize_in(0, 500), gens::usize_in(0, 500)),
        |&(a, b)| {
            let e = ProgramEnumerator::over(vec![7u8, 8, 9]);
            let (pa, pb) = (e.program(a), e.program(b));
            if a < b {
                prop_assert!(pa.len() <= pb.len());
            }
            Ok(())
        },
    );
}

/// Machines are deterministic: same program + inputs, same outputs.
#[test]
fn machines_are_deterministic() {
    check(
        "machines_are_deterministic",
        gens::tuple2(gens::bytes(0, 48), gens::bytes(0, 8)),
        |(code, in_a)| {
            let run = || {
                let mut m = Machine::new(Program::from_bytes(code.clone()));
                let mut outs = Vec::new();
                for _ in 0..3 {
                    let mut io = RoundIo::with_inputs(in_a.clone(), vec![]);
                    m.round(&mut io);
                    outs.push((io.out_a, io.out_b));
                }
                outs
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

/// Halting is permanent.
#[test]
fn halting_is_permanent() {
    check("halting_is_permanent", gens::bytes(1, 48), |code: &Vec<u8>| {
        let mut m = Machine::new(Program::from_bytes(code.clone()));
        let mut halted_at = None;
        for round in 0..6 {
            let mut io = RoundIo::default();
            m.round(&mut io);
            if m.halted().is_some() && halted_at.is_none() {
                halted_at = Some(round);
            }
            if let Some(at) = halted_at {
                prop_assert!(m.halted().is_some(), "machine un-halted after round {at}");
                prop_assert!(io.out_a.is_empty() || round == at);
            }
        }
        Ok(())
    });
}
