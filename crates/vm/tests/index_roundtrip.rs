//! Property tests for `ProgramEnumerator::index_of` as the inverse of
//! `program`: a seeded sweep of indices round-trips through both directions,
//! including the boundary of a length-capped (finite) class.

use goc_testkit::{check, gens, prop_assert, prop_assert_eq};
use goc_vm::enumerate::ProgramEnumerator;

/// `index_of(program(i)) == Some(i)` on an unbounded class, over a seeded
/// sweep of indices and alphabet sizes.
#[test]
fn index_of_inverts_program_unbounded() {
    check(
        "index_of_inverts_program_unbounded",
        // Alphabet size 1 makes program length == index, so keep the index
        // range modest: the sweep still crosses several length boundaries
        // for every alphabet size without quadratic index_of cost.
        gens::tuple2(gens::usize_in(0, 5_000), gens::usize_in(1, 9)),
        |&(index, alpha)| {
            let e = ProgramEnumerator::over((0..alpha as u8).collect::<Vec<_>>());
            prop_assert_eq!(e.index_of(&e.program(index)), Some(index), "alphabet {alpha}");
            Ok(())
        },
    );
}

/// On a length-capped class every in-range index round-trips, and the
/// boundary behaves: `program(total - 1)` is the last real program, while
/// out-of-range indices wrap onto in-class programs whose `index_of` is the
/// wrapped (in-range) index — never `None`, never out of range.
#[test]
fn index_of_round_trips_at_the_cap_boundary() {
    check(
        "index_of_round_trips_at_the_cap_boundary",
        gens::tuple3(gens::usize_in(1, 4), gens::usize_in(1, 4), gens::usize_in(0, 64)),
        |&(alpha, cap, past)| {
            let e = ProgramEnumerator::over((10..10 + alpha as u8).collect::<Vec<_>>())
                .with_max_len(cap);
            let total = e.total().expect("capped class is finite");
            for index in [0, total / 2, total.saturating_sub(1)] {
                prop_assert_eq!(e.index_of(&e.program(index)), Some(index), "total {total}");
            }
            // Past-the-end indices wrap; the wrapped program is in class and
            // its true index is in range.
            let wrapped = e.program(total + past);
            prop_assert!(wrapped.len() <= cap);
            let back = e.index_of(&wrapped).expect("wrapped program is in the class");
            prop_assert!(back < total, "index_of must map into the class, got {back}");
            prop_assert_eq!(back, (total + past) % total);
            Ok(())
        },
    );
}

/// A program longer than the cap is rejected by `index_of`.
#[test]
fn index_of_rejects_programs_past_the_cap() {
    check(
        "index_of_rejects_programs_past_the_cap",
        gens::usize_in(1, 6),
        |&cap| {
            let e = ProgramEnumerator::over(vec![0u8, 1]).with_max_len(cap);
            let too_long = goc_vm::program::Program::from_bytes(vec![0u8; cap + 1]);
            prop_assert_eq!(e.index_of(&too_long), None);
            Ok(())
        },
    );
}
