//! Chunked transfer framing: payloads split across multiple rounds.
//!
//! Real systems rarely fit a document in one datagram. This substrate frames
//! a payload into numbered chunks and reassembles them on the far side —
//! and, true to this library's theme, turns *frame size limits* into one
//! more axis of protocol incompatibility: a receiver with a small buffer
//! silently drops oversized frames, so the sender's chunk size becomes part
//! of the strategy class (see
//! [`ChunkedDriverServer`](crate::printing::ChunkedDriverServer)).
//!
//! Wire format of a frame (byte-safe, self-delimiting):
//!
//! ```text
//! [0xF7][seq: u16 BE][total: u16 BE][chunk bytes…]
//! ```

/// Frame marker byte.
pub const FRAME_MARKER: u8 = 0xF7;

/// Header length: marker + seq + total.
const HEADER_LEN: usize = 5;

/// Splits `payload` into frames of at most `chunk_size` payload bytes.
///
/// # Panics
///
/// Panics if `chunk_size == 0`, `payload` is empty, or the payload needs
/// more than `u16::MAX` frames.
pub fn frame(payload: &[u8], chunk_size: usize) -> Vec<Vec<u8>> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    assert!(!payload.is_empty(), "cannot frame an empty payload");
    let total = payload.len().div_ceil(chunk_size);
    assert!(total <= u16::MAX as usize, "payload needs too many frames");
    payload
        .chunks(chunk_size)
        .enumerate()
        .map(|(seq, chunk)| {
            let mut f = Vec::with_capacity(HEADER_LEN + chunk.len());
            f.push(FRAME_MARKER);
            f.extend_from_slice(&(seq as u16).to_be_bytes());
            f.extend_from_slice(&(total as u16).to_be_bytes());
            f.extend_from_slice(chunk);
            f
        })
        .collect()
}

/// A parsed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    /// 0-based sequence number.
    pub seq: u16,
    /// Total frames in the transfer.
    pub total: u16,
    /// This frame's payload bytes.
    pub chunk: &'a [u8],
}

/// Parses a frame; `None` for anything that is not a well-formed frame.
pub fn parse_frame(bytes: &[u8]) -> Option<Frame<'_>> {
    if bytes.len() <= HEADER_LEN || bytes[0] != FRAME_MARKER {
        return None;
    }
    let seq = u16::from_be_bytes([bytes[1], bytes[2]]);
    let total = u16::from_be_bytes([bytes[3], bytes[4]]);
    if total == 0 || seq >= total {
        return None;
    }
    Some(Frame { seq, total, chunk: &bytes[HEADER_LEN..] })
}

/// Reassembles in-order frame streams into payloads.
///
/// Frames must arrive in sequence (0, 1, …, total−1); any gap, duplicate or
/// total-mismatch resets the transfer (the next seq-0 frame starts over).
/// This strictness is deliberate: it models an unsophisticated peripheral,
/// and it keeps the reassembler's state bounded.
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    buffer: Vec<u8>,
    next_seq: u16,
    total: u16,
}

impl Reassembler {
    /// A fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one message. Returns `Some(payload)` when a transfer completes.
    /// Non-frame messages and out-of-order frames reset the transfer.
    pub fn feed(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        let Some(frame) = parse_frame(bytes) else {
            self.reset();
            return None;
        };
        if frame.seq == 0 {
            // A new transfer begins (possibly abandoning an old one).
            self.buffer.clear();
            self.next_seq = 0;
            self.total = frame.total;
        } else if frame.seq != self.next_seq || frame.total != self.total {
            self.reset();
            return None;
        }
        self.buffer.extend_from_slice(frame.chunk);
        self.next_seq += 1;
        if self.next_seq == self.total {
            let payload = std::mem::take(&mut self.buffer);
            self.reset();
            return Some(payload);
        }
        None
    }

    /// Frames received towards the current (incomplete) transfer.
    pub fn pending_frames(&self) -> u16 {
        self.next_seq
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.next_seq = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_reassemble_roundtrip() {
        let payload = b"The quick brown fox jumps over the lazy dog";
        for chunk_size in [1usize, 3, 7, 44, 100] {
            let frames = frame(payload, chunk_size);
            assert_eq!(frames.len(), payload.len().div_ceil(chunk_size));
            let mut r = Reassembler::new();
            let mut out = None;
            for f in &frames {
                out = r.feed(f);
            }
            assert_eq!(out.as_deref(), Some(payload.as_slice()), "chunk {chunk_size}");
        }
    }

    #[test]
    fn parse_rejects_noise() {
        assert!(parse_frame(b"").is_none());
        assert!(parse_frame(b"hello").is_none());
        assert!(parse_frame(&[FRAME_MARKER, 0, 0, 0, 1]).is_none(), "no chunk bytes");
        assert!(parse_frame(&[FRAME_MARKER, 0, 5, 0, 3, b'x']).is_none(), "seq >= total");
        assert!(parse_frame(&[FRAME_MARKER, 0, 0, 0, 0, b'x']).is_none(), "total == 0");
    }

    #[test]
    fn out_of_order_resets() {
        let frames = frame(b"abcdef", 2);
        let mut r = Reassembler::new();
        assert!(r.feed(&frames[0]).is_none());
        assert!(r.feed(&frames[2]).is_none(), "gap resets");
        assert_eq!(r.pending_frames(), 0);
        // A complete in-order pass still works afterwards.
        for (i, f) in frames.iter().enumerate() {
            let out = r.feed(f);
            assert_eq!(out.is_some(), i == frames.len() - 1);
        }
    }

    #[test]
    fn new_transfer_preempts_old() {
        let a = frame(b"aaaa", 2);
        let b = frame(b"bb", 2);
        let mut r = Reassembler::new();
        assert!(r.feed(&a[0]).is_none());
        // Fresh seq-0 frame of a new transfer wins.
        let out = r.feed(&b[0]);
        assert_eq!(out.as_deref(), Some(b"bb".as_slice()));
    }

    #[test]
    fn noise_between_transfers_resets() {
        let frames = frame(b"abcd", 2);
        let mut r = Reassembler::new();
        assert!(r.feed(&frames[0]).is_none());
        assert!(r.feed(b"line noise").is_none());
        assert!(r.feed(&frames[1]).is_none(), "transfer was reset by noise");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        let _ = frame(b"x", 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_payload_panics() {
        let _ = frame(b"", 4);
    }

    #[test]
    fn single_frame_transfer() {
        let frames = frame(b"tiny", 64);
        assert_eq!(frames.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.feed(&frames[0]).as_deref(), Some(b"tiny".as_slice()));
    }
}
