//! # goc-goals — concrete goals of communication
//!
//! Instantiations of the goal-oriented communication model for the scenarios
//! the paper motivates:
//!
//! - [`printing`] — the paper's flagship example: drive a printer through a
//!   driver whose command dialect is unknown.
//! - [`computation`] — Juba–Sudan delegation of computation, generalized to
//!   verifiable puzzles.
//! - [`transmission`] — get content to the world intact through a server
//!   applying an unknown transformation (and a *learning* user that beats
//!   enumeration — the paper's closing remark on efficient special cases).
//! - [`navigation`] — an embodied compact goal: steer an agent whose
//!   actuator mapping is unknown.
//!
//! Each module ships a world, a referee (finite and/or compact), a server
//! class, an enumerable user class, and safe-and-viable sensing, so Theorem
//! 1's universal users apply off the shelf.

pub mod codec;
pub mod framing;
pub mod computation;
pub mod navigation;
pub mod printing;
pub mod transmission;
