//! Sensing for the navigation goal: arrivals at the target.

use super::world::parse_sensors;
use goc_core::sensing::{Indication, Sensing};
use goc_core::view::ViewEvent;

/// Sensing that is **positive** whenever the sensor broadcast shows the
/// agent on (or adjacent in time to) the target — concretely, whenever the
/// target *relocated* since the last broadcast, which happens exactly on a
/// visit.
///
/// Watching relocations rather than coordinates equality matters: the world
/// moves the target away in the same round the agent arrives, so "agent ==
/// target" is never directly observable in the sensor stream.
#[derive(Clone, Debug, Default)]
pub struct VisitSensing {
    last_target: Option<(u32, u32)>,
}

impl Sensing for VisitSensing {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let Some((_, target)) = parse_sensors(event.received.from_world.as_bytes()) else {
            return Indication::Silent;
        };
        let moved = self.last_target.map(|t| t != target).unwrap_or(false);
        self.last_target = Some(target);
        if moved {
            Indication::Positive
        } else {
            Indication::Silent
        }
    }

    fn reset(&mut self) {
        self.last_target = None;
    }

    fn name(&self) -> String {
        "visit".to_string()
    }
}

/// Convenience constructor for [`VisitSensing`].
pub fn visit_sensing() -> VisitSensing {
    VisitSensing::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::msg::{Message, UserIn, UserOut};

    fn event(agent: (u32, u32), target: (u32, u32)) -> ViewEvent {
        ViewEvent {
            round: 0,
            received: UserIn {
                from_server: Message::silence(),
                from_world: Message::from(format!(
                    "POS:{},{};TGT:{},{}",
                    agent.0, agent.1, target.0, target.1
                )),
            },
            sent: UserOut::silence(),
        }
    }

    #[test]
    fn positive_on_target_relocation() {
        let mut s = visit_sensing();
        assert_eq!(s.observe(&event((0, 0), (3, 3))), Indication::Silent);
        assert_eq!(s.observe(&event((1, 0), (3, 3))), Indication::Silent);
        // Target moved: a visit happened.
        assert_eq!(s.observe(&event((3, 3), (5, 1))), Indication::Positive);
        assert_eq!(s.observe(&event((3, 3), (5, 1))), Indication::Silent);
    }

    #[test]
    fn reset_forgets_baseline() {
        let mut s = visit_sensing();
        let _ = s.observe(&event((0, 0), (3, 3)));
        s.reset();
        // First observation after reset cannot be positive.
        assert_eq!(s.observe(&event((0, 0), (9, 9))), Indication::Silent);
    }

    #[test]
    fn silent_on_noise() {
        let mut s = visit_sensing();
        let noise = ViewEvent {
            round: 0,
            received: UserIn {
                from_server: Message::silence(),
                from_world: Message::from("static"),
            },
            sent: UserOut::silence(),
        };
        assert_eq!(s.observe(&noise), Indication::Silent);
    }
}
