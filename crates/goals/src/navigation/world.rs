//! The grid world: an agent, a target, and a fixed actuation protocol.

use goc_core::msg::{Message, WorldIn, WorldOut};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, WorldStrategy};

/// A cardinal direction — the world's fixed actuation alphabet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Decreasing y.
    North,
    /// Increasing y.
    South,
    /// Increasing x.
    East,
    /// Decreasing x.
    West,
}

impl Dir {
    /// All four directions in canonical order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// The wire byte the world understands.
    pub fn to_byte(self) -> u8 {
        match self {
            Dir::North => b'N',
            Dir::South => b'S',
            Dir::East => b'E',
            Dir::West => b'W',
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Option<Dir> {
        match b {
            b'N' => Some(Dir::North),
            b'S' => Some(Dir::South),
            b'E' => Some(Dir::East),
            b'W' => Some(Dir::West),
            _ => None,
        }
    }

    /// The (dx, dy) displacement.
    pub fn delta(self) -> (i64, i64) {
        match self {
            Dir::North => (0, -1),
            Dir::South => (0, 1),
            Dir::East => (1, 0),
            Dir::West => (-1, 0),
        }
    }
}

/// Referee-visible state of the grid world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridState {
    /// Agent position.
    pub agent: (u32, u32),
    /// Target position.
    pub target: (u32, u32),
    /// Number of target visits so far.
    pub visits: u64,
    /// Round of the most recent visit, if any.
    pub last_visit_round: Option<u64>,
    /// Rounds elapsed.
    pub round: u64,
}

/// The grid world strategy.
///
/// Protocol (fixed):
///
/// - server → world: a single byte `N`/`S`/`E`/`W` moves the agent one cell
///   (clamped at the walls); anything else is ignored.
/// - world → user, every round: `POS:x,y;TGT:tx,ty` — the agent's sensors.
/// - when the agent reaches the target, the visit is recorded and the target
///   relocates to a fresh random cell (≠ the agent's).
#[derive(Clone, Debug)]
pub struct GridWorld {
    width: u32,
    height: u32,
    state: GridState,
}

impl GridWorld {
    /// A `width` × `height` world with random agent and target positions.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than two cells.
    pub fn new(width: u32, height: u32, rng: &mut GocRng) -> Self {
        assert!(
            width as u64 * height as u64 >= 2,
            "GridWorld needs at least two cells"
        );
        let agent = (rng.below(width as u64) as u32, rng.below(height as u64) as u32);
        let target = Self::fresh_target(width, height, agent, rng);
        GridWorld {
            width,
            height,
            state: GridState { agent, target, visits: 0, last_visit_round: None, round: 0 },
        }
    }

    fn fresh_target(width: u32, height: u32, avoid: (u32, u32), rng: &mut GocRng) -> (u32, u32) {
        loop {
            let t = (rng.below(width as u64) as u32, rng.below(height as u64) as u32);
            if t != avoid {
                return t;
            }
        }
    }

    /// The sensor broadcast for the current state.
    fn sensors(&self) -> Message {
        let s = &self.state;
        Message::from(format!(
            "POS:{},{};TGT:{},{}",
            s.agent.0, s.agent.1, s.target.0, s.target.1
        ))
    }
}

impl WorldStrategy for GridWorld {
    type State = GridState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        let cmd = input.from_server.as_bytes();
        if cmd.len() == 1 {
            if let Some(dir) = Dir::from_byte(cmd[0]) {
                let (dx, dy) = dir.delta();
                let nx = (self.state.agent.0 as i64 + dx).clamp(0, self.width as i64 - 1);
                let ny = (self.state.agent.1 as i64 + dy).clamp(0, self.height as i64 - 1);
                self.state.agent = (nx as u32, ny as u32);
            }
        }
        if self.state.agent == self.state.target {
            self.state.visits += 1;
            self.state.last_visit_round = Some(ctx.round);
            self.state.target =
                Self::fresh_target(self.width, self.height, self.state.agent, ctx.rng);
        }
        self.state.round = ctx.round + 1;
        WorldOut::to_user(self.sensors())
    }

    fn state(&self) -> GridState {
        self.state.clone()
    }
}

/// Parses the sensor broadcast into `(agent, target)`.
pub fn parse_sensors(bytes: &[u8]) -> Option<((u32, u32), (u32, u32))> {
    let text = std::str::from_utf8(bytes).ok()?;
    let rest = text.strip_prefix("POS:")?;
    let (pos_part, tgt_part) = rest.split_once(";TGT:")?;
    let parse_pair = |s: &str| -> Option<(u32, u32)> {
        let (x, y) = s.split_once(',')?;
        Some((x.parse().ok()?, y.parse().ok()?))
    };
    Some((parse_pair(pos_part)?, parse_pair(tgt_part)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(w: &mut GridWorld, round: u64, cmd: &[u8]) -> WorldOut {
        let mut rng = GocRng::seed_from_u64(123);
        let mut ctx = StepCtx::new(round, &mut rng);
        w.step(
            &mut ctx,
            &WorldIn {
                from_user: Message::silence(),
                from_server: Message::from_bytes(cmd.to_vec()),
            },
        )
    }

    #[test]
    fn moves_respect_commands_and_walls() {
        let mut rng = GocRng::seed_from_u64(1);
        let mut w = GridWorld::new(5, 5, &mut rng);
        // Drive to the west wall.
        for r in 0..10 {
            step(&mut w, r, b"W");
        }
        assert_eq!(w.state().agent.0, 0);
        // One step east.
        let y = w.state().agent.1;
        step(&mut w, 10, b"E");
        assert_eq!(w.state().agent, (1, y));
    }

    #[test]
    fn ignores_garbage_commands() {
        let mut rng = GocRng::seed_from_u64(2);
        let mut w = GridWorld::new(5, 5, &mut rng);
        let before = w.state().agent;
        step(&mut w, 0, b"X");
        step(&mut w, 1, b"NN");
        step(&mut w, 2, b"");
        assert_eq!(w.state().agent, before);
    }

    #[test]
    fn visiting_target_relocates_it() {
        let mut rng = GocRng::seed_from_u64(3);
        let mut w = GridWorld::new(4, 1, &mut rng);
        // Drive east then west along the line until a visit happens.
        for r in 0..20 {
            let dir = if w.state().agent.0 < w.state().target.0 { b"E" } else { b"W" };
            step(&mut w, r, dir);
            if w.state().visits > 0 {
                break;
            }
        }
        let s = w.state();
        assert_eq!(s.visits, 1);
        assert!(s.last_visit_round.is_some());
        assert_ne!(s.agent, s.target, "target relocated away from agent");
    }

    #[test]
    fn sensor_broadcast_roundtrips() {
        let mut rng = GocRng::seed_from_u64(4);
        let mut w = GridWorld::new(9, 7, &mut rng);
        let out = step(&mut w, 0, b"");
        let (agent, target) = parse_sensors(out.to_user.as_bytes()).unwrap();
        assert_eq!(agent, w.state().agent);
        assert_eq!(target, w.state().target);
    }

    #[test]
    fn parse_sensors_rejects_noise() {
        assert_eq!(parse_sensors(b"POS:1,2"), None);
        assert_eq!(parse_sensors(b"garbage"), None);
        assert_eq!(parse_sensors(b"POS:a,b;TGT:1,2"), None);
    }

    #[test]
    fn dir_byte_roundtrip() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_byte(d.to_byte()), Some(d));
        }
        assert_eq!(Dir::from_byte(b'Q'), None);
    }
}
