//! **The navigation goal** — an embodied compact goal: steer an agent to a
//! moving target through an actuator whose button wiring is unknown.
//!
//! The paper stresses that goals of communication go beyond transmitting or
//! computing; controlling a physical effector ("using a printer", a robot
//! arm, a thermostat) is the canonical third family. Here the world is a
//! grid with an agent and a relocating target; the server is an actuator
//! mapping four user buttons to the four directions by an unknown
//! permutation (24 wirings).
//!
//! A prefix is acceptable iff the target was visited within its last
//! `window` rounds — a compact goal: the agent must keep finding targets
//! forever, so a user that never deciphers the wiring fails infinitely often.

mod sensing;
mod servers;
mod users;
mod world;

pub use sensing::{visit_sensing, VisitSensing};
pub use servers::{ActuatorServer, Wiring, BUTTONS};
pub use users::{wiring_class, CalibratingNavigator, GreedyNavigator};
pub use world::{parse_sensors, Dir, GridState, GridWorld};

use goc_core::goal::{CompactGoal, Goal, GoalKind};
use goc_core::rng::GocRng;

/// The compact navigation goal.
#[derive(Clone, Debug)]
pub struct NavigationGoal {
    width: u32,
    height: u32,
    window: u64,
}

impl NavigationGoal {
    /// A goal on a `width` × `height` grid where the target must be visited
    /// every `window` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than two cells, or if `window` is
    /// smaller than the grid diameter plus actuation latency (such goals are
    /// unachievable, hence not forgiving).
    pub fn new(width: u32, height: u32, window: u64) -> Self {
        assert!(width as u64 * height as u64 >= 2, "grid needs at least two cells");
        let diameter = (width + height) as u64;
        assert!(
            window >= diameter + 4,
            "window {window} too tight for grid diameter {diameter} (+4 rounds latency)"
        );
        NavigationGoal { width, height, window }
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The visit window.
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Goal for NavigationGoal {
    type World = GridWorld;

    fn spawn_world(&self, rng: &mut GocRng) -> GridWorld {
        GridWorld::new(self.width, self.height, rng)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Compact
    }

    fn name(&self) -> String {
        format!("navigation({}x{})", self.width, self.height)
    }
}

impl CompactGoal for NavigationGoal {
    fn prefix_acceptable(&self, prefix: &[GridState]) -> bool {
        let Some(last) = prefix.last() else { return true };
        if last.round < self.window {
            return true; // start-up grace
        }
        match last.last_visit_round {
            Some(v) => last.round - v <= self.window,
            None => false,
        }
    }
}

impl goc_core::score::ScoredGoal for NavigationGoal {
    /// Quality = visits achieved relative to the best possible rate (one
    /// visit per half-diameter of the grid, the mean target distance).
    fn score(&self, history: &[GridState]) -> f64 {
        let Some(last) = history.last() else { return 0.0 };
        if last.round == 0 {
            return 0.0;
        }
        let mean_trip = ((self.width + self.height) as f64 / 2.0).max(1.0);
        let best_possible = last.round as f64 / mean_trip;
        (last.visits as f64 / best_possible).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::exec::Execution;
    use goc_core::goal::evaluate_compact;
    use goc_core::prelude::*;

    fn run(
        user: BoxedUser,
        wiring: Wiring,
        horizon: u64,
        seed: u64,
    ) -> goc_core::goal::CompactVerdict {
        let goal = NavigationGoal::new(6, 6, 40);
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(ActuatorServer::new(wiring)),
            user,
            rng,
        );
        let t = exec.run_for(horizon);
        evaluate_compact(&goal, &t)
    }

    #[test]
    fn matching_greedy_navigator_sustains_goal() {
        for idx in [0usize, 5, 13, 23] {
            let w = Wiring::nth(idx);
            let v = run(Box::new(GreedyNavigator::new(w)), w, 1200, 10 + idx as u64);
            assert!(v.achieved(200), "wiring {idx}: {v:?}");
        }
    }

    #[test]
    fn wrong_wiring_fails() {
        let v = run(
            Box::new(GreedyNavigator::new(Wiring::nth(1))),
            Wiring::nth(2),
            1200,
            3,
        );
        assert!(!v.achieved(200), "verdict: {v:?}");
    }

    #[test]
    fn calibrating_navigator_learns_any_wiring() {
        for idx in [0usize, 7, 17, 23] {
            let v = run(Box::new(CalibratingNavigator::new()), Wiring::nth(idx), 2000, 40 + idx as u64);
            assert!(v.achieved(200), "wiring {idx}: {v:?}");
        }
    }

    #[test]
    fn constructor_rejects_unachievable_windows() {
        assert!(std::panic::catch_unwind(|| NavigationGoal::new(10, 10, 5)).is_err());
        assert!(std::panic::catch_unwind(|| NavigationGoal::new(1, 1, 100)).is_err());
        let g = NavigationGoal::new(5, 4, 20);
        assert_eq!((g.width(), g.height(), g.window()), (5, 4, 20));
        assert_eq!(g.kind(), GoalKind::Compact);
    }
}
