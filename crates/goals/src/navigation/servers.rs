//! Actuator servers: map the user's buttons to directions, permuted.

use super::world::Dir;
use goc_core::msg::{Message, ServerIn, ServerOut};
use goc_core::strategy::{ServerStrategy, StepCtx};

/// The user-side control alphabet: four buttons, wire bytes `'0'..='3'`.
pub const BUTTONS: [u8; 4] = [b'0', b'1', b'2', b'3'];

/// A button→direction wiring (one of the 24 permutations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wiring {
    dirs: [Dir; 4],
}

impl Wiring {
    /// The identity wiring: buttons 0..3 → N, S, E, W.
    pub fn identity() -> Self {
        Wiring { dirs: Dir::ALL }
    }

    /// The `index`-th of the 24 permutations (index taken modulo 24).
    pub fn nth(index: usize) -> Self {
        let mut pool: Vec<Dir> = Dir::ALL.to_vec();
        let mut dirs = [Dir::North; 4];
        let mut k = index % 24;
        for (slot, remaining) in (0..4).rev().enumerate().map(|(i, s)| (i, s + 1)) {
            let fact = (1..=remaining - 1).product::<usize>().max(1);
            let pick = k / fact;
            k %= fact;
            dirs[slot] = pool.remove(pick);
        }
        Wiring { dirs }
    }

    /// All 24 wirings.
    pub fn all() -> Vec<Wiring> {
        (0..24).map(Wiring::nth).collect()
    }

    /// The direction a button press produces.
    pub fn direction_of(&self, button: u8) -> Option<Dir> {
        BUTTONS.iter().position(|&b| b == button).map(|i| self.dirs[i])
    }

    /// The button that produces `dir`.
    pub fn button_for(&self, dir: Dir) -> u8 {
        let i = self.dirs.iter().position(|&d| d == dir).expect("all dirs wired");
        BUTTONS[i]
    }
}

/// An actuator server applying one [`Wiring`]: forwards each button press as
/// the wired direction byte; everything else is dropped.
#[derive(Clone, Copy, Debug)]
pub struct ActuatorServer {
    wiring: Wiring,
}

impl ActuatorServer {
    /// An actuator with the given wiring.
    pub fn new(wiring: Wiring) -> Self {
        ActuatorServer { wiring }
    }

    /// The server's wiring.
    pub fn wiring(&self) -> Wiring {
        self.wiring
    }
}

impl ServerStrategy for ActuatorServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let bytes = input.from_user.as_bytes();
        if bytes.len() == 1 {
            if let Some(dir) = self.wiring.direction_of(bytes[0]) {
                return ServerOut::to_world(Message::from_bytes(vec![dir.to_byte()]));
            }
        }
        ServerOut::silence()
    }

    fn name(&self) -> String {
        format!("actuator({:?})", self.wiring.dirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::rng::GocRng;

    #[test]
    fn all_wirings_are_distinct_permutations() {
        let all = Wiring::all();
        assert_eq!(all.len(), 24);
        for w in &all {
            let mut dirs = w.dirs.to_vec();
            dirs.sort_by_key(|d| d.to_byte());
            let mut canon = Dir::ALL.to_vec();
            canon.sort_by_key(|d| d.to_byte());
            assert_eq!(dirs, canon, "{w:?} is not a permutation");
        }
        for i in 0..24 {
            for j in (i + 1)..24 {
                assert_ne!(all[i], all[j], "wirings {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn button_for_inverts_direction_of() {
        for w in Wiring::all() {
            for d in Dir::ALL {
                assert_eq!(w.direction_of(w.button_for(d)), Some(d));
            }
        }
    }

    #[test]
    fn identity_wiring_order() {
        let w = Wiring::identity();
        assert_eq!(w.direction_of(b'0'), Some(Dir::North));
        assert_eq!(w.direction_of(b'3'), Some(Dir::West));
        assert_eq!(w.direction_of(b'9'), None);
    }

    #[test]
    fn actuator_forwards_wired_direction() {
        let mut s = ActuatorServer::new(Wiring::nth(5));
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = s.step(
            &mut ctx,
            &ServerIn { from_user: Message::from_bytes(vec![b'2']), from_world: Message::silence() },
        );
        let expected = Wiring::nth(5).direction_of(b'2').unwrap().to_byte();
        assert_eq!(out.to_world.as_bytes(), &[expected]);
    }

    #[test]
    fn actuator_drops_garbage() {
        let mut s = ActuatorServer::new(Wiring::identity());
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        for junk in [&b"42"[..], b"x", b""] {
            let out = s.step(
                &mut ctx,
                &ServerIn {
                    from_user: Message::from_bytes(junk.to_vec()),
                    from_world: Message::silence(),
                },
            );
            assert_eq!(out, ServerOut::silence());
        }
    }

    #[test]
    fn nth_is_periodic() {
        assert_eq!(Wiring::nth(0), Wiring::nth(24));
        assert_eq!(Wiring::nth(7), Wiring::nth(31));
    }
}
