//! Navigators: the greedy enumeration class and the self-calibrating
//! learner.

use super::servers::{Wiring, BUTTONS};
use super::world::{parse_sensors, Dir};
use goc_core::enumeration::SliceEnumerator;
use goc_core::msg::{Message, UserIn, UserOut};
use goc_core::strategy::{StepCtx, UserStrategy};
use std::collections::VecDeque;

/// Picks a direction that reduces Manhattan distance to the target.
fn greedy_direction(agent: (u32, u32), target: (u32, u32)) -> Option<Dir> {
    if agent.0 < target.0 {
        Some(Dir::East)
    } else if agent.0 > target.0 {
        Some(Dir::West)
    } else if agent.1 < target.1 {
        Some(Dir::South)
    } else if agent.1 > target.1 {
        Some(Dir::North)
    } else {
        None
    }
}

/// A navigator that assumes one [`Wiring`] and steers greedily.
#[derive(Clone, Copy, Debug)]
pub struct GreedyNavigator {
    assumed: Wiring,
}

impl GreedyNavigator {
    /// A navigator assuming the actuator uses `assumed`.
    pub fn new(assumed: Wiring) -> Self {
        GreedyNavigator { assumed }
    }
}

impl UserStrategy for GreedyNavigator {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        let Some((agent, target)) = parse_sensors(input.from_world.as_bytes()) else {
            return UserOut::silence();
        };
        match greedy_direction(agent, target) {
            Some(dir) => {
                UserOut::to_server(Message::from_bytes(vec![self.assumed.button_for(dir)]))
            }
            None => UserOut::silence(),
        }
    }

    fn name(&self) -> String {
        format!("greedy-navigator({:?})", self.assumed)
    }
}

/// The enumerable class of greedy navigators: one per wiring (24 members).
pub fn wiring_class() -> SliceEnumerator {
    let mut class = SliceEnumerator::new("greedy-navigators(x24)");
    for w in Wiring::all() {
        class.push(move || Box::new(GreedyNavigator::new(w)));
    }
    class
}

/// The **self-calibrating** navigator: presses buttons round-robin, watches
/// the position deltas in the sensor stream to reconstruct the wiring, then
/// steers greedily — no enumeration over the 24 wirings.
///
/// Calibration is robust to walls: a press that produced no movement (wall
/// hit) stays unresolved and is retried later, by which time the presses
/// that *did* move have pulled the agent off the wall.
#[derive(Clone, Debug)]
pub struct CalibratingNavigator {
    /// `learned[i] = Some(dir)` once button `i`'s direction is known.
    learned: [Option<Dir>; 4],
    /// Presses awaiting their delta, with the position seen at press time.
    pending: VecDeque<(u8, (u32, u32))>,
    /// Rounds the front pending press has gone without observed movement.
    stale: u32,
    rr_next: usize,
}

impl CalibratingNavigator {
    /// A fresh, uncalibrated navigator.
    pub fn new() -> Self {
        CalibratingNavigator { learned: [None; 4], pending: VecDeque::new(), stale: 0, rr_next: 0 }
    }

    /// Number of buttons whose direction is known.
    pub fn calibrated(&self) -> usize {
        self.learned.iter().filter(|l| l.is_some()).count()
    }

    fn button_for(&self, dir: Dir) -> Option<u8> {
        self.learned
            .iter()
            .position(|&l| l == Some(dir))
            .map(|i| BUTTONS[i])
    }

    fn dir_from_delta(from: (u32, u32), to: (u32, u32)) -> Option<Dir> {
        let dx = to.0 as i64 - from.0 as i64;
        let dy = to.1 as i64 - from.1 as i64;
        match (dx, dy) {
            (0, -1) => Some(Dir::North),
            (0, 1) => Some(Dir::South),
            (1, 0) => Some(Dir::East),
            (-1, 0) => Some(Dir::West),
            _ => None,
        }
    }
}

impl Default for CalibratingNavigator {
    fn default() -> Self {
        Self::new()
    }
}

impl UserStrategy for CalibratingNavigator {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        let Some((agent, target)) = parse_sensors(input.from_world.as_bytes()) else {
            return UserOut::silence();
        };

        // Attribute the freshest observable delta to the oldest pending
        // press whose pre-press position we recorded two rounds ago.
        if let Some(&(button, pos_at_press)) = self.pending.front() {
            // The press moves the world two rounds after it was sent; once
            // the reported position is *based on* a later round we can
            // attribute. We approximate by attributing as soon as the
            // reported position differs from the recorded one, or marking
            // unresolved (wall) after seeing two unchanged reports.
            if agent != pos_at_press {
                if let Some(dir) = Self::dir_from_delta(pos_at_press, agent) {
                    let idx = BUTTONS.iter().position(|&b| b == button).expect("known button");
                    self.learned[idx] = Some(dir);
                }
                self.pending.pop_front();
                self.stale = 0;
            } else {
                // No movement yet: a press resolves within 3 rounds (press →
                // actuation → sensor report), so longer staleness means a
                // wall hit; abandon the press for a later retry.
                self.stale += 1;
                if self.stale >= 3 {
                    self.pending.pop_front();
                    self.stale = 0;
                }
            }
        }

        // Fully calibrated: steer greedily.
        if self.calibrated() == 4 {
            return match greedy_direction(agent, target) {
                Some(dir) => match self.button_for(dir) {
                    Some(b) => UserOut::to_server(Message::from_bytes(vec![b])),
                    None => UserOut::silence(),
                },
                None => UserOut::silence(),
            };
        }

        // Calibration phase: press unresolved buttons round-robin, one press
        // in flight at a time (unambiguous attribution).
        if self.pending.is_empty() {
            for _ in 0..4 {
                let i = self.rr_next % 4;
                self.rr_next += 1;
                if self.learned[i].is_none() {
                    self.pending.push_back((BUTTONS[i], agent));
                    return UserOut::to_server(Message::from_bytes(vec![BUTTONS[i]]));
                }
            }
        }
        UserOut::silence()
    }

    fn name(&self) -> String {
        format!("calibrating-navigator({}/4)", self.calibrated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::rng::GocRng;

    fn sensors(agent: (u32, u32), target: (u32, u32)) -> UserIn {
        UserIn {
            from_server: Message::silence(),
            from_world: Message::from(format!(
                "POS:{},{};TGT:{},{}",
                agent.0, agent.1, target.0, target.1
            )),
        }
    }

    fn step_user(u: &mut dyn UserStrategy, round: u64, input: &UserIn) -> UserOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        u.step(&mut ctx, input)
    }

    #[test]
    fn greedy_direction_reduces_distance() {
        assert_eq!(greedy_direction((0, 0), (3, 0)), Some(Dir::East));
        assert_eq!(greedy_direction((3, 0), (0, 0)), Some(Dir::West));
        assert_eq!(greedy_direction((0, 0), (0, 3)), Some(Dir::South));
        assert_eq!(greedy_direction((0, 3), (0, 0)), Some(Dir::North));
        assert_eq!(greedy_direction((2, 2), (2, 2)), None);
    }

    #[test]
    fn greedy_navigator_presses_assumed_button() {
        let w = Wiring::nth(3);
        let mut u = GreedyNavigator::new(w);
        let out = step_user(&mut u, 0, &sensors((0, 0), (5, 0)));
        assert_eq!(out.to_server.as_bytes(), &[w.button_for(Dir::East)]);
    }

    #[test]
    fn greedy_navigator_rests_on_target() {
        let mut u = GreedyNavigator::new(Wiring::identity());
        let out = step_user(&mut u, 0, &sensors((2, 2), (2, 2)));
        assert!(out.to_server.is_silence());
    }

    #[test]
    fn wiring_class_has_24_members() {
        use goc_core::enumeration::StrategyEnumerator;
        let class = wiring_class();
        assert_eq!(class.len(), Some(24));
        assert!(class.strategy(23).is_some());
    }

    #[test]
    fn calibrator_learns_from_deltas() {
        let mut u = CalibratingNavigator::new();
        // Press button '0' at (5,5)…
        let out = step_user(&mut u, 0, &sensors((5, 5), (0, 0)));
        assert_eq!(out.to_server.as_bytes(), b"0");
        // …observe the agent moved south: '0' must be South.
        let _ = step_user(&mut u, 1, &sensors((5, 6), (0, 0)));
        assert_eq!(u.learned[0], Some(Dir::South));
        assert_eq!(u.calibrated(), 1);
    }

    #[test]
    fn calibrator_retries_wall_hits() {
        let mut u = CalibratingNavigator::new();
        // Press '0' but never observe movement (wall): after 3 stale
        // rounds the press is abandoned and the next button is tried.
        let _ = step_user(&mut u, 0, &sensors((0, 0), (9, 9)));
        let mut pressed = Vec::new();
        for r in 1..8 {
            let out = step_user(&mut u, r, &sensors((0, 0), (9, 9)));
            if !out.to_server.is_silence() {
                pressed.push(out.to_server.as_bytes()[0]);
            }
        }
        assert!(pressed.contains(&b'1'), "moved on to another button: {pressed:?}");
        assert_eq!(u.learned[0], None, "button 0 stays unresolved");
    }

    #[test]
    fn fully_calibrated_navigator_steers() {
        let mut u = CalibratingNavigator::new();
        u.learned = [Some(Dir::North), Some(Dir::South), Some(Dir::East), Some(Dir::West)];
        let out = step_user(&mut u, 0, &sensors((0, 0), (4, 0)));
        assert_eq!(out.to_server.as_bytes(), b"2", "East is wired to button 2");
    }
}
