//! Sensing for the delegation goal: the world's confirmation.

use super::world::GOOD;
use goc_core::sensing::{Indication, Sensing};
use goc_core::view::ViewEvent;

/// Sensing that is **positive** exactly when the world confirms a verified
/// answer (`GOOD`).
///
/// - *Safety* (finite): the world sends `GOOD` only after its own referee
///   condition (a verified answer) became true, so a positive indication
///   implies an acceptable history.
/// - *Viability*: with any helpful (right-protocol-reachable) server, the
///   matching [`DelegationUser`](super::DelegationUser) earns a `GOOD`.
#[derive(Clone, Debug, Default)]
pub struct ConfirmationSensing;

impl Sensing for ConfirmationSensing {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        if event.received.from_world.as_bytes() == GOOD {
            Indication::Positive
        } else {
            Indication::Silent
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "confirmation".to_string()
    }
}

/// Convenience constructor for [`ConfirmationSensing`].
pub fn confirmation_sensing() -> ConfirmationSensing {
    ConfirmationSensing
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::msg::{Message, UserIn, UserOut};

    fn event(from_world: &[u8]) -> ViewEvent {
        ViewEvent {
            round: 0,
            received: UserIn {
                from_server: Message::silence(),
                from_world: Message::from_bytes(from_world.to_vec()),
            },
            sent: UserOut::silence(),
        }
    }

    #[test]
    fn positive_only_on_good() {
        let mut s = confirmation_sensing();
        assert_eq!(s.observe(&event(b"GOOD")), Indication::Positive);
        assert_eq!(s.observe(&event(b"INST:4;7")), Indication::Silent);
        assert_eq!(s.observe(&event(b"GOOD!")), Indication::Silent);
        assert_eq!(s.observe(&event(b"")), Indication::Silent);
    }

    #[test]
    fn stateless_reset() {
        let mut s = confirmation_sensing();
        s.reset();
        assert_eq!(s.observe(&event(b"GOOD")), Indication::Positive);
        assert_eq!(s.name(), "confirmation");
    }
}
