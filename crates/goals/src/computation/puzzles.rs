//! Verifiable puzzles: the computational content of the delegation goal.
//!
//! The original Juba–Sudan delegation result concerns a PSPACE-complete
//! problem; what the theory actually uses is the *asymmetry* that the user
//! can cheaply **verify** a solution it could not feasibly **produce**. A
//! [`Puzzle`] captures exactly that interface, with two concrete instances:
//! subset-sum and modular square roots. (See DESIGN.md §1 for the
//! substitution note.)

use goc_core::rng::GocRng;
use std::fmt::Debug;

/// A family of instances the user can verify but not (feasibly) solve.
///
/// Instances and solutions travel as ASCII byte strings so that servers may
/// re-encode them dialect-fashion.
pub trait Puzzle: Debug {
    /// Draws a fresh `(instance, solution)` pair.
    fn generate(&self, rng: &mut GocRng) -> (Vec<u8>, Vec<u8>);

    /// Cheap verification: does `candidate` solve `instance`?
    fn verify(&self, instance: &[u8], candidate: &[u8]) -> bool;

    /// Expensive reference solver (used by
    /// [`SolverServer`](crate::computation::SolverServer) when it is not simply told the
    /// answer). Returns `None` on malformed instances.
    fn solve(&self, instance: &[u8]) -> Option<Vec<u8>>;

    /// A short human-readable name.
    fn name(&self) -> String;
}

/// Subset-sum: instance `v1,v2,…,vn;t`, solution = decimal bitmask `m` with
/// `Σ_{i: bit i of m} v_i = t`.
///
/// Verification is a linear scan; solving is a 2^n search.
#[derive(Clone, Debug)]
pub struct SubsetSum {
    n: usize,
    value_bits: u32,
}

impl SubsetSum {
    /// A subset-sum family with `n` values of `value_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 24` and `1 <= value_bits <= 32`.
    pub fn new(n: usize, value_bits: u32) -> Self {
        assert!((1..=24).contains(&n), "SubsetSum supports 1..=24 values");
        assert!((1..=32).contains(&value_bits), "value_bits must be in 1..=32");
        SubsetSum { n, value_bits }
    }

    fn parse_instance(instance: &[u8]) -> Option<(Vec<u64>, u64)> {
        let text = std::str::from_utf8(instance).ok()?;
        let (values_part, target_part) = text.split_once(';')?;
        let values: Option<Vec<u64>> =
            values_part.split(',').map(|v| v.parse::<u64>().ok()).collect();
        Some((values?, target_part.parse().ok()?))
    }
}

impl Puzzle for SubsetSum {
    fn generate(&self, rng: &mut GocRng) -> (Vec<u8>, Vec<u8>) {
        let bound = 1u64 << self.value_bits;
        let values: Vec<u64> = (0..self.n).map(|_| rng.below(bound)).collect();
        // Non-empty random mask.
        let mask = rng.below((1u64 << self.n) - 1) + 1;
        let target: u64 = values
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .sum();
        let instance = format!(
            "{};{target}",
            values.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
        (instance.into_bytes(), mask.to_string().into_bytes())
    }

    fn verify(&self, instance: &[u8], candidate: &[u8]) -> bool {
        let Some((values, target)) = Self::parse_instance(instance) else { return false };
        let Ok(mask) = std::str::from_utf8(candidate).unwrap_or("x").parse::<u64>() else {
            return false;
        };
        if mask == 0 || mask >= 1u64 << values.len() {
            return false;
        }
        let sum: u64 = values
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .sum();
        sum == target
    }

    fn solve(&self, instance: &[u8]) -> Option<Vec<u8>> {
        let (values, target) = Self::parse_instance(instance)?;
        if values.len() > 24 {
            return None;
        }
        for mask in 1u64..1u64 << values.len() {
            let sum: u64 = values
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .sum();
            if sum == target {
                return Some(mask.to_string().into_bytes());
            }
        }
        None
    }

    fn name(&self) -> String {
        format!("subset-sum(n={}, bits={})", self.n, self.value_bits)
    }
}

/// Modular square roots: instance `a;p`, solution `x` with `x² ≡ a (mod p)`.
///
/// Verification is one multiplication; the reference solver scans `1..p`.
#[derive(Clone, Debug)]
pub struct ModSquareRoot {
    modulus: u64,
}

impl ModSquareRoot {
    /// A modular-square-root family mod `modulus` (should be an odd prime;
    /// 10007 is a good default for solvable-by-scan experiments).
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 3` or `modulus` is even or ≥ 2^31 (to keep
    /// verification overflow-free in u64 arithmetic).
    pub fn new(modulus: u64) -> Self {
        assert!(modulus >= 3 && modulus % 2 == 1, "modulus must be an odd number ≥ 3");
        assert!(modulus < 1 << 31, "modulus must fit in 31 bits");
        ModSquareRoot { modulus }
    }

    fn parse_instance(instance: &[u8]) -> Option<(u64, u64)> {
        let text = std::str::from_utf8(instance).ok()?;
        let (a, p) = text.split_once(';')?;
        Some((a.parse().ok()?, p.parse().ok()?))
    }
}

impl Puzzle for ModSquareRoot {
    fn generate(&self, rng: &mut GocRng) -> (Vec<u8>, Vec<u8>) {
        let x = rng.below(self.modulus - 1) + 1;
        let a = x * x % self.modulus;
        (format!("{a};{}", self.modulus).into_bytes(), x.to_string().into_bytes())
    }

    fn verify(&self, instance: &[u8], candidate: &[u8]) -> bool {
        let Some((a, p)) = Self::parse_instance(instance) else { return false };
        if p != self.modulus {
            return false;
        }
        let Ok(x) = std::str::from_utf8(candidate).unwrap_or("x").parse::<u64>() else {
            return false;
        };
        x > 0 && x < p && x * x % p == a
    }

    fn solve(&self, instance: &[u8]) -> Option<Vec<u8>> {
        let (a, p) = Self::parse_instance(instance)?;
        if p != self.modulus {
            return None;
        }
        (1..p).find(|x| x * x % p == a).map(|x| x.to_string().into_bytes())
    }

    fn name(&self) -> String {
        format!("mod-sqrt(p={})", self.modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_sum_generate_verify() {
        let p = SubsetSum::new(10, 16);
        let mut rng = GocRng::seed_from_u64(1);
        for _ in 0..20 {
            let (inst, sol) = p.generate(&mut rng);
            assert!(p.verify(&inst, &sol), "{:?} / {:?}", inst, sol);
        }
    }

    #[test]
    fn subset_sum_rejects_bad_candidates() {
        let p = SubsetSum::new(8, 12);
        let mut rng = GocRng::seed_from_u64(2);
        let (inst, sol) = p.generate(&mut rng);
        assert!(!p.verify(&inst, b"0"));
        assert!(!p.verify(&inst, b"garbage"));
        assert!(!p.verify(&inst, b"99999999"));
        assert!(!p.verify(b"not an instance", &sol));
    }

    #[test]
    fn subset_sum_solver_finds_verified_solution() {
        let p = SubsetSum::new(10, 10);
        let mut rng = GocRng::seed_from_u64(3);
        for _ in 0..5 {
            let (inst, _) = p.generate(&mut rng);
            let solved = p.solve(&inst).expect("generated instances are solvable");
            assert!(p.verify(&inst, &solved));
        }
    }

    #[test]
    fn mod_sqrt_generate_verify_solve() {
        let p = ModSquareRoot::new(10007);
        let mut rng = GocRng::seed_from_u64(4);
        for _ in 0..10 {
            let (inst, sol) = p.generate(&mut rng);
            assert!(p.verify(&inst, &sol));
            let solved = p.solve(&inst).unwrap();
            assert!(p.verify(&inst, &solved));
        }
    }

    #[test]
    fn mod_sqrt_rejects_wrong_modulus_and_garbage() {
        let p = ModSquareRoot::new(10007);
        assert!(!p.verify(b"4;101", b"2")); // wrong modulus
        assert!(!p.verify(b"4;10007", b"0"));
        assert!(!p.verify(b"nonsense", b"2"));
        assert!(p.verify(b"4;10007", b"2"));
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| SubsetSum::new(0, 8)).is_err());
        assert!(std::panic::catch_unwind(|| SubsetSum::new(25, 8)).is_err());
        assert!(std::panic::catch_unwind(|| ModSquareRoot::new(4)).is_err());
        assert!(std::panic::catch_unwind(|| ModSquareRoot::new(1 << 32)).is_err());
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(SubsetSum::new(8, 16).name(), "subset-sum(n=8, bits=16)");
        assert_eq!(ModSquareRoot::new(101).name(), "mod-sqrt(p=101)");
    }
}
