//! **The delegation-of-computation goal** — the Juba–Sudan scenario that
//! seeded the theory, generalized to verifiable puzzles.
//!
//! The world poses a puzzle instance the user can *verify* but not feasibly
//! *solve*; the server can produce the solution (it is either entrusted with
//! it or recomputes it — see [`OracleServer`] / [`SolverServer`]), but only
//! answers queries phrased in its own protocol. The user must obtain the
//! solution, submit it to the world, and halt after the world's
//! confirmation.
//!
//! This is a **finite** goal: the referee accepts iff a verified answer
//! reached the world before the user halted.

mod puzzles;
mod sensing;
mod servers;
mod users;
mod world;

pub use puzzles::{ModSquareRoot, Puzzle, SubsetSum};
pub use sensing::{confirmation_sensing, ConfirmationSensing};
pub use servers::{OracleServer, QueryProtocol, SolverServer};
pub use users::{protocol_class, DelegationUser};
pub use world::{ComputationState, ComputationWorld};

use goc_core::goal::{FiniteGoal, Goal, GoalKind};
use goc_core::rng::GocRng;
use goc_core::strategy::Halt;
use std::sync::Arc;

/// The finite delegation goal over a puzzle family.
#[derive(Clone, Debug)]
pub struct DelegationGoal {
    puzzle: Arc<dyn Puzzle + Send + Sync>,
}

impl DelegationGoal {
    /// A delegation goal for `puzzle`.
    pub fn new(puzzle: Arc<dyn Puzzle + Send + Sync>) -> Self {
        DelegationGoal { puzzle }
    }

    /// The puzzle family.
    pub fn puzzle(&self) -> &Arc<dyn Puzzle + Send + Sync> {
        &self.puzzle
    }
}

impl Goal for DelegationGoal {
    type World = ComputationWorld;

    fn spawn_world(&self, rng: &mut GocRng) -> ComputationWorld {
        // The world's non-deterministic choice: which instance to pose.
        ComputationWorld::new(self.puzzle.clone(), rng)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Finite
    }

    fn name(&self) -> String {
        format!("delegation[{}]", self.puzzle.name())
    }
}

impl FiniteGoal for DelegationGoal {
    fn accepts(&self, history: &[ComputationState], _halt: &Halt) -> bool {
        history.last().map(|s| s.verified).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoding;
    use goc_core::exec::Execution;
    use goc_core::goal::evaluate_finite;

    fn goal() -> DelegationGoal {
        DelegationGoal::new(Arc::new(ModSquareRoot::new(10007)))
    }

    #[test]
    fn informed_client_with_oracle_server() {
        let g = goal();
        let proto = QueryProtocol::new(b'?', Encoding::Xor(0x11));
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            g.spawn_world(&mut rng),
            Box::new(OracleServer::new(proto)),
            Box::new(DelegationUser::new(proto, g.puzzle().clone())),
            rng,
        );
        let t = exec.run(100);
        let v = evaluate_finite(&g, &t);
        assert!(v.achieved, "verdict: {v:?}");
        assert!(v.rounds < 10, "should finish fast, took {}", v.rounds);
    }

    #[test]
    fn informed_client_with_solver_server() {
        let g = goal();
        let proto = QueryProtocol::new(b'q', Encoding::Reverse);
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            g.spawn_world(&mut rng),
            Box::new(SolverServer::new(proto, g.puzzle().clone())),
            Box::new(DelegationUser::new(proto, g.puzzle().clone())),
            rng,
        );
        let t = exec.run(100);
        assert!(evaluate_finite(&g, &t).achieved);
    }

    #[test]
    fn protocol_mismatch_fails() {
        let g = goal();
        let mut rng = GocRng::seed_from_u64(3);
        let mut exec = Execution::new(
            g.spawn_world(&mut rng),
            Box::new(OracleServer::new(QueryProtocol::new(b'?', Encoding::Xor(1)))),
            Box::new(DelegationUser::new(
                QueryProtocol::new(b'!', Encoding::Xor(1)),
                g.puzzle().clone(),
            )),
            rng,
        );
        let t = exec.run(100);
        let v = evaluate_finite(&g, &t);
        assert!(!v.achieved);
        assert!(!v.halted, "an honest client never halts unconfirmed");
    }

    #[test]
    fn subset_sum_delegation_works_too() {
        let g = DelegationGoal::new(Arc::new(SubsetSum::new(12, 12)));
        let proto = QueryProtocol::new(b'?', Encoding::Identity);
        let mut rng = GocRng::seed_from_u64(4);
        let mut exec = Execution::new(
            g.spawn_world(&mut rng),
            Box::new(SolverServer::new(proto, g.puzzle().clone())),
            Box::new(DelegationUser::new(proto, g.puzzle().clone())),
            rng,
        );
        let t = exec.run(200);
        assert!(evaluate_finite(&g, &t).achieved);
    }

    #[test]
    fn goal_metadata() {
        let g = goal();
        assert_eq!(g.kind(), GoalKind::Finite);
        assert!(g.name().contains("mod-sqrt"));
    }
}
