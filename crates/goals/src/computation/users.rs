//! User strategies for the delegation goal, and their enumerable class.

use super::puzzles::Puzzle;
use super::servers::QueryProtocol;
use super::world::{ANS_PREFIX, GOOD, INST_PREFIX};
use goc_core::enumeration::SliceEnumerator;
use goc_core::msg::{Message, UserIn, UserOut};
use goc_core::strategy::{Halt, StepCtx, UserStrategy};
use std::sync::Arc;

/// A user that queries the server in one assumed [`QueryProtocol`], verifies
/// replies against the posed instance, submits verified answers to the
/// world, and halts on the world's confirmation.
///
/// This is the honest delegation client: it never claims success on its own
/// judgement alone — it waits for `GOOD` (which is also what makes the
/// natural sensing safe).
#[derive(Debug)]
pub struct DelegationUser {
    protocol: QueryProtocol,
    puzzle: Arc<dyn Puzzle + Send + Sync>,
    instance: Option<Vec<u8>>,
    verified_answer: Option<Vec<u8>>,
    halt: Option<Halt>,
}

impl DelegationUser {
    /// A delegation client speaking `protocol`, verifying with `puzzle`.
    pub fn new(protocol: QueryProtocol, puzzle: Arc<dyn Puzzle + Send + Sync>) -> Self {
        DelegationUser { protocol, puzzle, instance: None, verified_answer: None, halt: None }
    }

    /// The assumed protocol.
    pub fn protocol(&self) -> QueryProtocol {
        self.protocol
    }
}

impl UserStrategy for DelegationUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        let world_bytes = input.from_world.as_bytes();
        if world_bytes == GOOD {
            let output = self.verified_answer.clone().unwrap_or_default();
            self.halt = Some(Halt::with_output(output));
            return UserOut::silence();
        }
        if let Some(inst) = world_bytes.strip_prefix(INST_PREFIX) {
            if self.instance.as_deref() != Some(inst) {
                self.instance = Some(inst.to_vec());
                self.verified_answer = None;
            }
        }

        // Check any server reply against the instance.
        if self.verified_answer.is_none() && !input.from_server.is_silence() {
            if let Some(inst) = &self.instance {
                let candidate = self.protocol.parse_reply(input.from_server.as_bytes());
                if self.puzzle.verify(inst, &candidate) {
                    self.verified_answer = Some(candidate);
                }
            }
        }

        match &self.verified_answer {
            // Submit the verified answer until the world confirms.
            Some(ans) => {
                let mut msg = ANS_PREFIX.to_vec();
                msg.extend_from_slice(ans);
                UserOut::to_world(Message::from_bytes(msg))
            }
            // Keep querying the server.
            None => UserOut::to_server(Message::from_bytes(self.protocol.frame_query())),
        }
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn name(&self) -> String {
        format!(
            "delegation-user({:#04x}, {:?})",
            self.protocol.greeting(),
            self.protocol.encoding()
        )
    }
}

/// The enumerable class of delegation clients, one per protocol.
pub fn protocol_class(
    protocols: &[QueryProtocol],
    puzzle: Arc<dyn Puzzle + Send + Sync>,
) -> SliceEnumerator {
    let mut class = SliceEnumerator::new(format!("delegation-users(x{})", protocols.len()));
    for &protocol in protocols {
        let puzzle = puzzle.clone();
        class.push(move || Box::new(DelegationUser::new(protocol, puzzle.clone())));
    }
    class
}

#[cfg(test)]
mod tests {
    use super::super::puzzles::ModSquareRoot;
    use super::*;
    use crate::codec::Encoding;
    use goc_core::enumeration::StrategyEnumerator;
    use goc_core::rng::GocRng;

    fn proto() -> QueryProtocol {
        QueryProtocol::new(b'?', Encoding::Xor(5))
    }

    fn user() -> DelegationUser {
        DelegationUser::new(proto(), Arc::new(ModSquareRoot::new(10007)))
    }

    fn step(u: &mut DelegationUser, round: u64, from_server: Message, from_world: Message) -> UserOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        u.step(&mut ctx, &UserIn { from_server, from_world })
    }

    fn inst_msg(inst: &[u8]) -> Message {
        let mut m = INST_PREFIX.to_vec();
        m.extend_from_slice(inst);
        Message::from_bytes(m)
    }

    #[test]
    fn queries_until_reply_verifies() {
        let mut u = user();
        // Learn the instance; keep querying.
        let out = step(&mut u, 0, Message::silence(), inst_msg(b"4;10007"));
        assert_eq!(out.to_server.as_bytes(), proto().frame_query().as_slice());
        // Garbage reply: still querying.
        let out = step(&mut u, 1, Message::from_bytes(vec![0xff, 0xfe]), inst_msg(b"4;10007"));
        assert!(!out.to_server.is_silence());
        // Correct (encoded) reply: switch to answering the world.
        let reply = Message::from_bytes(proto().frame_reply(b"2"));
        let out = step(&mut u, 2, reply, inst_msg(b"4;10007"));
        assert_eq!(out.to_world.as_bytes(), b"ANS:2");
        assert!(out.to_server.is_silence());
    }

    #[test]
    fn halts_only_on_world_confirmation() {
        let mut u = user();
        let _ = step(&mut u, 0, Message::silence(), inst_msg(b"4;10007"));
        let reply = Message::from_bytes(proto().frame_reply(b"2"));
        let _ = step(&mut u, 1, reply, inst_msg(b"4;10007"));
        assert!(UserStrategy::halted(&u).is_none());
        let _ = step(&mut u, 2, Message::silence(), Message::from_bytes(GOOD.to_vec()));
        let halt = UserStrategy::halted(&u).expect("halts on GOOD");
        assert_eq!(halt.output.as_bytes(), b"2");
    }

    #[test]
    fn wrong_protocol_reply_never_verifies() {
        let mut u = user();
        let _ = step(&mut u, 0, Message::silence(), inst_msg(b"4;10007"));
        // Reply encoded with a different mask decodes to garbage.
        let foreign = QueryProtocol::new(b'?', Encoding::Xor(99));
        let reply = Message::from_bytes(foreign.frame_reply(b"2"));
        let out = step(&mut u, 1, reply, inst_msg(b"4;10007"));
        assert!(!out.to_server.is_silence(), "keeps querying");
    }

    #[test]
    fn new_instance_resets_answer() {
        let mut u = user();
        let _ = step(&mut u, 0, Message::silence(), inst_msg(b"4;10007"));
        let reply = Message::from_bytes(proto().frame_reply(b"2"));
        let _ = step(&mut u, 1, reply, inst_msg(b"4;10007"));
        // World poses a fresh instance: the stored answer must be dropped.
        let out = step(&mut u, 2, Message::silence(), inst_msg(b"9;10007"));
        assert!(out.to_world.is_silence());
        assert!(!out.to_server.is_silence());
    }

    #[test]
    fn class_enumerates_protocols() {
        let protocols = QueryProtocol::class(b"?!", &[Encoding::Identity]);
        let class = protocol_class(&protocols, Arc::new(ModSquareRoot::new(101)));
        assert_eq!(class.len(), Some(2));
        assert!(class.strategy(1).is_some());
    }
}
