//! Server classes for the delegation goal.
//!
//! A server answers queries for the solution — but only queries phrased in
//! its own protocol: a greeting byte and a payload encoding (the
//! "handshake nobody standardized"). Two flavours:
//!
//! - [`OracleServer`] — trusts the world's solution broadcast (pure
//!   communication asymmetry).
//! - [`SolverServer`] — ignores the broadcast and recomputes from the
//!   instance with the puzzle's reference solver (computational asymmetry).

use super::puzzles::Puzzle;
use super::world::{INST_PREFIX, SOL_INFIX};
use crate::codec::Encoding;
use goc_core::msg::{Message, ServerIn, ServerOut};
use goc_core::strategy::{ServerStrategy, StepCtx};
use std::sync::Arc;

/// A query protocol: the greeting byte that must open a query, and the
/// encoding applied to the reply (and expected on the query payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryProtocol {
    greeting: u8,
    encoding: Encoding,
}

impl QueryProtocol {
    /// A protocol with the given greeting byte and payload encoding.
    pub fn new(greeting: u8, encoding: Encoding) -> Self {
        QueryProtocol { greeting, encoding }
    }

    /// The greeting byte.
    pub fn greeting(&self) -> u8 {
        self.greeting
    }

    /// The payload encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Frames a query for the solution.
    pub fn frame_query(&self) -> Vec<u8> {
        vec![self.greeting]
    }

    /// Is `wire` a well-formed query in this protocol?
    pub fn parses_query(&self, wire: &[u8]) -> bool {
        wire == [self.greeting]
    }

    /// Encodes a reply carrying `solution`.
    pub fn frame_reply(&self, solution: &[u8]) -> Vec<u8> {
        self.encoding.encode(solution)
    }

    /// Decodes a reply into a candidate solution.
    pub fn parse_reply(&self, wire: &[u8]) -> Vec<u8> {
        self.encoding.decode(wire)
    }

    /// The cartesian protocol class over `greetings` × `encodings`.
    pub fn class(greetings: &[u8], encodings: &[Encoding]) -> Vec<QueryProtocol> {
        let mut out = Vec::with_capacity(greetings.len() * encodings.len());
        for &g in greetings {
            for &e in encodings {
                out.push(QueryProtocol::new(g, e));
            }
        }
        out
    }
}

/// Splits the world's server-side broadcast into `(instance, solution)`.
fn split_broadcast(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let rest = bytes.strip_prefix(INST_PREFIX)?;
    let pos = rest.windows(SOL_INFIX.len()).position(|w| w == SOL_INFIX)?;
    Some((&rest[..pos], &rest[pos + SOL_INFIX.len()..]))
}

/// A server that relays the solution it was entrusted with, to users that
/// greet it correctly.
#[derive(Clone, Debug)]
pub struct OracleServer {
    protocol: QueryProtocol,
    solution: Option<Vec<u8>>,
}

impl OracleServer {
    /// An oracle speaking `protocol`.
    pub fn new(protocol: QueryProtocol) -> Self {
        OracleServer { protocol, solution: None }
    }
}

impl ServerStrategy for OracleServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if let Some((_, sol)) = split_broadcast(input.from_world.as_bytes()) {
            self.solution = Some(sol.to_vec());
        }
        match (&self.solution, self.protocol.parses_query(input.from_user.as_bytes())) {
            (Some(sol), true) => {
                ServerOut::to_user(Message::from_bytes(self.protocol.frame_reply(sol)))
            }
            _ => ServerOut::silence(),
        }
    }

    fn name(&self) -> String {
        format!("oracle({:#04x}, {:?})", self.protocol.greeting, self.protocol.encoding)
    }
}

/// A server that *solves* the instance with the puzzle's reference solver,
/// ignoring the world's hint.
#[derive(Debug)]
pub struct SolverServer {
    protocol: QueryProtocol,
    puzzle: Arc<dyn Puzzle + Send + Sync>,
    instance: Option<Vec<u8>>,
    solved: Option<Vec<u8>>,
}

impl SolverServer {
    /// A solver speaking `protocol` for `puzzle`.
    pub fn new(protocol: QueryProtocol, puzzle: Arc<dyn Puzzle + Send + Sync>) -> Self {
        SolverServer { protocol, puzzle, instance: None, solved: None }
    }
}

impl ServerStrategy for SolverServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if let Some((inst, _)) = split_broadcast(input.from_world.as_bytes()) {
            if self.instance.as_deref() != Some(inst) {
                self.instance = Some(inst.to_vec());
                self.solved = self.puzzle.solve(inst);
            }
        }
        match (&self.solved, self.protocol.parses_query(input.from_user.as_bytes())) {
            (Some(sol), true) => {
                ServerOut::to_user(Message::from_bytes(self.protocol.frame_reply(sol)))
            }
            _ => ServerOut::silence(),
        }
    }

    fn name(&self) -> String {
        format!(
            "solver({:#04x}, {:?}, {})",
            self.protocol.greeting,
            self.protocol.encoding,
            self.puzzle.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::puzzles::ModSquareRoot;
    use super::*;
    use goc_core::rng::GocRng;

    fn broadcast(inst: &[u8], sol: &[u8]) -> Message {
        let mut m = INST_PREFIX.to_vec();
        m.extend_from_slice(inst);
        m.extend_from_slice(SOL_INFIX);
        m.extend_from_slice(sol);
        Message::from_bytes(m)
    }

    fn step_server(
        s: &mut dyn ServerStrategy,
        round: u64,
        from_user: &[u8],
        from_world: Message,
    ) -> ServerOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        s.step(&mut ctx, &ServerIn { from_user: Message::from_bytes(from_user.to_vec()), from_world })
    }

    #[test]
    fn oracle_answers_correct_greeting_only() {
        let proto = QueryProtocol::new(b'?', Encoding::Xor(0x11));
        let mut s = OracleServer::new(proto);
        // Learn the solution from the broadcast.
        let out = step_server(&mut s, 0, b"?", broadcast(b"4;10007", b"2"));
        assert_eq!(out.to_user.as_bytes(), proto.frame_reply(b"2").as_slice());
        // Wrong greeting: silence.
        let out2 = step_server(&mut s, 1, b"!", Message::silence());
        assert_eq!(out2, ServerOut::silence());
    }

    #[test]
    fn oracle_is_silent_before_broadcast() {
        let proto = QueryProtocol::new(b'?', Encoding::Identity);
        let mut s = OracleServer::new(proto);
        let out = step_server(&mut s, 0, b"?", Message::silence());
        assert_eq!(out, ServerOut::silence());
    }

    #[test]
    fn solver_recomputes_from_instance() {
        let proto = QueryProtocol::new(b'q', Encoding::Rot(3));
        let puzzle = Arc::new(ModSquareRoot::new(10007));
        let mut s = SolverServer::new(proto, puzzle.clone());
        // Broadcast carries a *wrong* hint; the solver must ignore it.
        let out = step_server(&mut s, 0, b"q", broadcast(b"4;10007", b"9999"));
        let reply = proto.parse_reply(out.to_user.as_bytes());
        assert!(puzzle.verify(b"4;10007", &reply));
    }

    #[test]
    fn protocol_roundtrip_and_class() {
        let proto = QueryProtocol::new(7, Encoding::Reverse);
        assert!(proto.parses_query(&proto.frame_query()));
        assert_eq!(proto.parse_reply(&proto.frame_reply(b"abc")), b"abc".to_vec());
        let class = QueryProtocol::class(&[1, 2], &[Encoding::Identity, Encoding::Reverse]);
        assert_eq!(class.len(), 4);
    }

    #[test]
    fn split_broadcast_parses() {
        let m = broadcast(b"i", b"s");
        assert_eq!(split_broadcast(m.as_bytes()), Some((b"i".as_slice(), b"s".as_slice())));
        assert_eq!(split_broadcast(b"garbage"), None);
        assert_eq!(split_broadcast(b"INST:only"), None);
    }

    #[test]
    fn names_describe_protocol() {
        let proto = QueryProtocol::new(0x3f, Encoding::Identity);
        assert!(OracleServer::new(proto).name().contains("0x3f"));
        let solver = SolverServer::new(proto, Arc::new(ModSquareRoot::new(101)));
        assert!(solver.name().contains("mod-sqrt"));
    }
}
