//! The delegation world: poses a puzzle, confirms verified answers.

use super::puzzles::Puzzle;
use goc_core::msg::{Message, WorldIn, WorldOut};
use goc_core::strategy::{StepCtx, WorldStrategy};
use std::sync::Arc;

/// Wire prefix of the instance broadcast to the user.
pub(crate) const INST_PREFIX: &[u8] = b"INST:";
/// Wire separator in the server-side broadcast `INST:<i>;SOL:<s>`.
pub(crate) const SOL_INFIX: &[u8] = b";SOL:";
/// Wire prefix of an answer submission (user → world).
pub(crate) const ANS_PREFIX: &[u8] = b"ANS:";
/// Confirmation the world sends the user once the answer verified.
pub(crate) const GOOD: &[u8] = b"GOOD";

/// Referee-visible state of the delegation world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComputationState {
    /// The posed instance (encoded).
    pub instance: Vec<u8>,
    /// Has a verified answer been received from the user?
    pub verified: bool,
    /// How many malformed or wrong answers arrived.
    pub rejected: u64,
    /// Rounds elapsed.
    pub round: u64,
}

/// The delegation world strategy.
///
/// Protocol (fixed):
///
/// - world → user, every round until solved: `INST:<instance>`; after a
///   verified answer: `GOOD` (forever — confirmations are idempotent).
/// - world → server, every round: `INST:<instance>;SOL:<solution>` — the
///   world *entrusts the server* with the solution, modelling the
///   computational imbalance of delegation purely communicationally (the
///   server is the party that can produce the answer). Solver-flavoured
///   servers ignore the hint and recompute (see
///   [`SolverServer`](crate::computation::SolverServer)).
/// - user → world: `ANS:<candidate>` — verified against the instance.
#[derive(Debug)]
pub struct ComputationWorld {
    puzzle: Arc<dyn Puzzle + Send + Sync>,
    instance: Vec<u8>,
    solution: Vec<u8>,
    state: ComputationState,
}

impl ComputationWorld {
    /// A world posing a fresh instance of `puzzle` drawn with `rng`.
    pub fn new(puzzle: Arc<dyn Puzzle + Send + Sync>, rng: &mut goc_core::rng::GocRng) -> Self {
        let (instance, solution) = puzzle.generate(rng);
        let state = ComputationState {
            instance: instance.clone(),
            verified: false,
            rejected: 0,
            round: 0,
        };
        ComputationWorld { puzzle, instance, solution, state }
    }

    /// The posed instance (for tests and informed users).
    pub fn instance(&self) -> &[u8] {
        &self.instance
    }
}

impl WorldStrategy for ComputationWorld {
    type State = ComputationState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        // Process an answer from the user.
        if let Some(candidate) = input.from_user.as_bytes().strip_prefix(ANS_PREFIX) {
            if self.puzzle.verify(&self.instance, candidate) {
                self.state.verified = true;
            } else {
                self.state.rejected += 1;
            }
        }

        // Broadcasts.
        let to_user = if self.state.verified {
            Message::from_bytes(GOOD.to_vec())
        } else {
            let mut m = INST_PREFIX.to_vec();
            m.extend_from_slice(&self.instance);
            Message::from_bytes(m)
        };
        let mut to_server = INST_PREFIX.to_vec();
        to_server.extend_from_slice(&self.instance);
        to_server.extend_from_slice(SOL_INFIX);
        to_server.extend_from_slice(&self.solution);

        self.state.round = ctx.round + 1;
        WorldOut { to_user, to_server: Message::from_bytes(to_server) }
    }

    fn state(&self) -> ComputationState {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::puzzles::ModSquareRoot;
    use super::*;
    use goc_core::rng::GocRng;

    fn world() -> ComputationWorld {
        let mut rng = GocRng::seed_from_u64(7);
        ComputationWorld::new(Arc::new(ModSquareRoot::new(10007)), &mut rng)
    }

    fn step(w: &mut ComputationWorld, round: u64, from_user: &[u8]) -> WorldOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        w.step(
            &mut ctx,
            &WorldIn {
                from_user: Message::from_bytes(from_user.to_vec()),
                from_server: Message::silence(),
            },
        )
    }

    #[test]
    fn broadcasts_instance_to_user_and_solution_to_server() {
        let mut w = world();
        let out = step(&mut w, 0, b"");
        assert!(out.to_user.as_bytes().starts_with(INST_PREFIX));
        let server_msg = out.to_server.as_bytes();
        assert!(server_msg.starts_with(INST_PREFIX));
        assert!(server_msg.windows(SOL_INFIX.len()).any(|w| w == SOL_INFIX));
    }

    #[test]
    fn accepts_correct_answer_and_confirms() {
        let mut w = world();
        // Extract the real solution via the puzzle's solver.
        let sol = ModSquareRoot::new(10007).solve(w.instance()).unwrap();
        let mut ans = ANS_PREFIX.to_vec();
        ans.extend_from_slice(&sol);
        let out = step(&mut w, 0, &ans);
        assert!(w.state().verified);
        assert_eq!(out.to_user.as_bytes(), GOOD);
        // Confirmation persists.
        let out2 = step(&mut w, 1, b"");
        assert_eq!(out2.to_user.as_bytes(), GOOD);
    }

    #[test]
    fn rejects_wrong_answers_and_counts_them() {
        let mut w = world();
        step(&mut w, 0, b"ANS:0");
        step(&mut w, 1, b"ANS:notanumber");
        step(&mut w, 2, b"unprefixed");
        let s = w.state();
        assert!(!s.verified);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn state_tracks_round() {
        let mut w = world();
        step(&mut w, 0, b"");
        step(&mut w, 1, b"");
        assert_eq!(w.state().round, 2);
    }
}
