//! Printer-driver dialects: the server class of the printing goal.
//!
//! A driver accepts job submissions from the user as
//! `<opcode byte><encoded payload>` — but the opcode and the payload encoding
//! vary by driver. This is the concrete form of "no initial agreement on
//! what protocol and/or language is being used".

use goc_core::msg::{Message, ServerIn, ServerOut, UserIn};
use goc_core::strategy::{ServerStrategy, StepCtx};

use super::world::JOB_PREFIX;

pub use crate::codec::Encoding;

/// A complete driver dialect: submission opcode plus payload encoding.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dialect {
    opcode: u8,
    encoding: Encoding,
}

impl Dialect {
    /// A dialect with submission opcode `opcode` and payload `encoding`.
    pub fn new(opcode: u8, encoding: Encoding) -> Self {
        Dialect { opcode, encoding }
    }

    /// The submission opcode byte.
    pub fn opcode(&self) -> u8 {
        self.opcode
    }

    /// The payload encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Frames `document` as a job submission in this dialect.
    pub fn frame_job(&self, document: &[u8]) -> Vec<u8> {
        let mut wire = vec![self.opcode];
        wire.extend(self.encoding.encode(document));
        wire
    }

    /// Parses a submission in this dialect, returning the document.
    pub fn parse_job(&self, wire: &[u8]) -> Option<Vec<u8>> {
        let (&op, payload) = wire.split_first()?;
        if op != self.opcode || payload.is_empty() {
            return None;
        }
        Some(self.encoding.decode(payload))
    }

    /// The full cartesian dialect class over `opcodes` × `encodings`.
    pub fn class(opcodes: &[u8], encodings: &[Encoding]) -> Vec<Dialect> {
        let mut out = Vec::with_capacity(opcodes.len() * encodings.len());
        for &op in opcodes {
            for &enc in encodings {
                out.push(Dialect::new(op, enc));
            }
        }
        out
    }
}

/// A printer-driver server speaking one [`Dialect`].
///
/// Behaviour: user messages that parse as a job submission in the driver's
/// dialect are forwarded to the printer as `JOB:<document>`; everything else
/// is ignored. Tray reports travel directly from the world to the user, so
/// the driver does not relay them.
#[derive(Clone, Debug)]
pub struct DriverServer {
    dialect: Dialect,
    /// Scratch buffer for building `JOB:` submissions without a per-round
    /// allocation.
    job_buf: Vec<u8>,
}

impl DriverServer {
    /// A driver speaking `dialect`.
    pub fn new(dialect: Dialect) -> Self {
        DriverServer { dialect, job_buf: Vec::new() }
    }

    /// The driver's dialect.
    pub fn dialect(&self) -> &Dialect {
        &self.dialect
    }
}

impl ServerStrategy for DriverServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let Some((&op, payload)) = input.from_user.as_bytes().split_first() else {
            return ServerOut::silence();
        };
        if op != self.dialect.opcode || payload.is_empty() {
            return ServerOut::silence();
        }
        self.job_buf.clear();
        self.job_buf.extend_from_slice(JOB_PREFIX);
        self.dialect.encoding.decode_into(payload, &mut self.job_buf);
        ServerOut::to_world(Message::from_bytes(&self.job_buf))
    }

    fn fork(&self) -> Option<goc_core::strategy::BoxedServer> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!("driver({:#04x}, {:?})", self.dialect.opcode, self.dialect.encoding)
    }
}

/// Extracts a tray report from a user's incoming world message, if present.
pub(crate) fn tray_report(input: &UserIn) -> Option<&[u8]> {
    let bytes = input.from_world.as_bytes();
    bytes.strip_prefix(super::world::TRAY_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::rng::GocRng;

    #[test]
    fn frame_and_parse_roundtrip() {
        let d = Dialect::new(0x50, Encoding::Rot(13));
        let wire = d.frame_job(b"doc");
        assert_eq!(d.parse_job(&wire), Some(b"doc".to_vec()));
    }

    #[test]
    fn parse_rejects_wrong_opcode_and_empty_payload() {
        let d = Dialect::new(0x50, Encoding::Identity);
        assert_eq!(d.parse_job(&[0x51, b'x']), None);
        assert_eq!(d.parse_job(&[0x50]), None);
        assert_eq!(d.parse_job(&[]), None);
    }

    #[test]
    fn dialect_class_is_cartesian() {
        let class = Dialect::class(&[1, 2], &[Encoding::Identity, Encoding::Reverse]);
        assert_eq!(class.len(), 4);
        assert!(class.contains(&Dialect::new(2, Encoding::Reverse)));
    }

    #[test]
    fn driver_forwards_only_its_dialect() {
        let d = Dialect::new(0x50, Encoding::Xor(0xff));
        let mut s = DriverServer::new(d.clone());
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let good = ServerIn {
            from_user: Message::from_bytes(d.frame_job(b"hi")),
            from_world: Message::silence(),
        };
        let out = s.step(&mut ctx, &good);
        assert_eq!(out.to_world.as_bytes(), b"JOB:hi");

        let bad = ServerIn {
            from_user: Message::from_bytes(vec![0x51, 0x00]),
            from_world: Message::silence(),
        };
        let mut ctx = StepCtx::new(1, &mut rng);
        assert_eq!(s.step(&mut ctx, &bad), ServerOut::silence());
    }

    #[test]
    fn different_dialects_disagree_on_wire_form() {
        let a = Dialect::new(0x50, Encoding::Xor(1));
        let b = Dialect::new(0x50, Encoding::Xor(2));
        // A job framed by `a` decodes to garbage under `b`.
        let wire = a.frame_job(b"doc");
        assert_ne!(b.parse_job(&wire), Some(b"doc".to_vec()));
    }

    #[test]
    fn driver_name_mentions_dialect() {
        let s = DriverServer::new(Dialect::new(0x10, Encoding::Reverse));
        assert!(s.name().contains("0x10"));
        assert!(s.name().contains("Reverse"));
    }
}
