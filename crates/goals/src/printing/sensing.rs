//! Sensing for the printing goal: watch the output tray.

use goc_core::sensing::{Indication, Sensing};
use goc_core::view::ViewEvent;

/// Sensing that is **positive** exactly when the output tray shows the
/// target document.
///
/// - *Safety* (finite): the world only reports `TRAY:<page>` after actually
///   printing `<page>`, so a positive implies the document is in the world's
///   print log — an acceptable history.
/// - *Viability*: a user speaking the driver's dialect gets the document
///   printed, hence reported.
///
/// For the compact constructions wrap it in
/// [`Deadline`](goc_core::sensing::Deadline) to convert prolonged silence
/// into negative evidence.
#[derive(Clone, Debug)]
pub struct TraySensing {
    document: Vec<u8>,
}

impl TraySensing {
    /// Sensing watching for `document` on the tray.
    pub fn new(document: impl AsRef<[u8]>) -> Self {
        TraySensing { document: document.as_ref().to_vec() }
    }
}

impl Sensing for TraySensing {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        let bytes = event.received.from_world.as_bytes();
        match bytes.strip_prefix(super::world::TRAY_PREFIX) {
            Some(page) if page == self.document.as_slice() => Indication::Positive,
            _ => Indication::Silent,
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "tray".to_string()
    }
}

/// Convenience constructor for [`TraySensing`].
pub fn tray_sensing(document: impl AsRef<[u8]>) -> TraySensing {
    TraySensing::new(document)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::msg::{Message, UserIn, UserOut};

    fn event(from_world: &[u8]) -> ViewEvent {
        ViewEvent {
            round: 0,
            received: UserIn {
                from_server: Message::silence(),
                from_world: Message::from_bytes(from_world.to_vec()),
            },
            sent: UserOut::silence(),
        }
    }

    #[test]
    fn positive_on_matching_tray_page() {
        let mut s = tray_sensing("doc");
        assert_eq!(s.observe(&event(b"TRAY:doc")), Indication::Positive);
    }

    #[test]
    fn silent_on_other_pages_and_noise() {
        let mut s = tray_sensing("doc");
        assert_eq!(s.observe(&event(b"TRAY:other")), Indication::Silent);
        assert_eq!(s.observe(&event(b"doc")), Indication::Silent);
        assert_eq!(s.observe(&event(b"")), Indication::Silent);
    }

    #[test]
    fn reset_is_stateless() {
        let mut s = tray_sensing("doc");
        s.reset();
        assert_eq!(s.observe(&event(b"TRAY:doc")), Indication::Positive);
        assert_eq!(s.name(), "tray");
    }
}
