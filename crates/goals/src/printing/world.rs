//! The printer world: accepts jobs from the server, reports the output tray
//! to the user.

use goc_core::msg::{Message, WorldIn, WorldOut};
use goc_core::strategy::{StepCtx, WorldStrategy};
use std::collections::BTreeMap;

/// Wire prefix of a job the printer accepts **from the server**.
pub(crate) const JOB_PREFIX: &[u8] = b"JOB:";

/// Wire prefix of the tray report the world sends the user.
pub(crate) const TRAY_PREFIX: &[u8] = b"TRAY:";

/// Referee-visible printer state.
///
/// The state is a bounded summary rather than the full page log: referees
/// only ever ask *whether* and *when* a document was (last) printed, and a
/// bounded state keeps long compact-goal transcripts O(rounds) instead of
/// O(rounds²).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrinterState {
    /// Round each distinct page was most recently printed at.
    pub last_printed: BTreeMap<Vec<u8>, u64>,
    /// The most recent page, if any.
    pub last_page: Option<Vec<u8>>,
    /// Total pages printed (including reprints).
    pub total_pages: u64,
    /// Rounds elapsed.
    pub round: u64,
}

impl PrinterState {
    /// Round of the most recent print of `document`, if any.
    pub fn prints_of(&self, document: &[u8]) -> Option<u64> {
        self.last_printed.get(document).copied()
    }

    /// Has `document` ever been printed?
    pub fn has_printed(&self, document: &[u8]) -> bool {
        self.last_printed.contains_key(document)
    }
}

/// The printer world strategy.
///
/// Protocol (fixed — this is "the rest of the system", not a negotiable
/// peer):
///
/// - server → world: `JOB:<bytes>` prints `<bytes>` as a page. Empty
///   payloads and anything else are ignored (printers shrug at line noise).
/// - world → user: after printing a page, `TRAY:<bytes>` — the user watches
///   pages land in the output tray. This is the feedback sensing builds on.
#[derive(Clone, Debug)]
pub struct PrinterWorld {
    state: PrinterState,
}

impl PrinterWorld {
    /// A printer with `junk_pages` pre-existing pages on the tray (the
    /// "arbitrary start state" of the theorems: someone printed before us).
    pub fn new(junk_pages: usize) -> Self {
        let mut state = PrinterState::default();
        for i in 0..junk_pages {
            let page = format!("junk-{i}").into_bytes();
            state.last_printed.insert(page.clone(), 0);
            state.last_page = Some(page);
            state.total_pages += 1;
        }
        PrinterWorld { state }
    }
}

impl WorldStrategy for PrinterWorld {
    type State = PrinterState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        let mut out = WorldOut::silence();
        let bytes = input.from_server.as_bytes();
        if bytes.starts_with(JOB_PREFIX) && bytes.len() > JOB_PREFIX.len() {
            let page = bytes[JOB_PREFIX.len()..].to_vec();
            let mut report = TRAY_PREFIX.to_vec();
            report.extend_from_slice(&page);
            self.state.last_printed.insert(page.clone(), ctx.round);
            self.state.last_page = Some(page);
            self.state.total_pages += 1;
            out = WorldOut::to_user(Message::from_bytes(report));
        }
        self.state.round = ctx.round + 1;
        out
    }

    fn state(&self) -> PrinterState {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::rng::GocRng;

    fn step_world(w: &mut PrinterWorld, round: u64, from_server: &[u8]) -> WorldOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        w.step(
            &mut ctx,
            &WorldIn {
                from_user: Message::silence(),
                from_server: Message::from_bytes(from_server.to_vec()),
            },
        )
    }

    #[test]
    fn prints_valid_jobs_and_reports_tray() {
        let mut w = PrinterWorld::new(0);
        let out = step_world(&mut w, 0, b"JOB:hello");
        assert_eq!(out.to_user.as_bytes(), b"TRAY:hello");
        assert!(w.state().has_printed(b"hello"));
        assert_eq!(w.state().prints_of(b"hello"), Some(0));
        assert_eq!(w.state().total_pages, 1);
        assert_eq!(w.state().last_page.as_deref(), Some(b"hello".as_slice()));
    }

    #[test]
    fn ignores_malformed_jobs() {
        let mut w = PrinterWorld::new(0);
        assert_eq!(step_world(&mut w, 0, b"PRINT hello"), WorldOut::silence());
        assert_eq!(step_world(&mut w, 1, b"JOB:"), WorldOut::silence());
        assert_eq!(step_world(&mut w, 2, b""), WorldOut::silence());
        assert_eq!(w.state().total_pages, 0);
    }

    #[test]
    fn ignores_direct_user_messages() {
        // The user cannot print directly: only the server channel drives the
        // printer (that is what makes the server necessary).
        let mut w = PrinterWorld::new(0);
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = w.step(
            &mut ctx,
            &WorldIn { from_user: Message::from("JOB:direct"), from_server: Message::silence() },
        );
        assert_eq!(out, WorldOut::silence());
        assert!(!w.state().has_printed(b"direct"));
    }

    #[test]
    fn junk_pages_model_arbitrary_start() {
        let w = PrinterWorld::new(3);
        assert_eq!(w.state().total_pages, 3);
        assert!(w.state().has_printed(b"junk-1"));
    }

    #[test]
    fn prints_of_tracks_most_recent() {
        let mut w = PrinterWorld::new(0);
        step_world(&mut w, 0, b"JOB:a");
        step_world(&mut w, 1, b"JOB:b");
        step_world(&mut w, 2, b"JOB:a");
        assert_eq!(w.state().prints_of(b"a"), Some(2));
        assert_eq!(w.state().prints_of(b"b"), Some(1));
        assert_eq!(w.state().prints_of(b"c"), None);
        assert_eq!(w.state().total_pages, 3);
    }

    #[test]
    fn state_stays_bounded_under_reprints() {
        let mut w = PrinterWorld::new(0);
        for r in 0..10_000 {
            step_world(&mut w, r, b"JOB:heartbeat");
        }
        assert_eq!(w.state().last_printed.len(), 1, "summary, not a log");
        assert_eq!(w.state().total_pages, 10_000);
    }
}
