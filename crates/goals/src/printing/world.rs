//! The printer world: accepts jobs from the server, reports the output tray
//! to the user.

use goc_core::msg::{Message, WorldIn, WorldOut};
use goc_core::strategy::{StepCtx, WorldStrategy};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Wire prefix of a job the printer accepts **from the server**.
pub(crate) const JOB_PREFIX: &[u8] = b"JOB:";

/// Wire prefix of the tray report the world sends the user.
pub(crate) const TRAY_PREFIX: &[u8] = b"TRAY:";

/// Referee-visible printer state.
///
/// The state is a bounded summary rather than the full page log: referees
/// only ever ask *whether* and *when* a document was (last) printed, and a
/// bounded state keeps long compact-goal transcripts O(rounds) instead of
/// O(rounds²).
///
/// Internally split into a **hot slot** (the most recent page and its print
/// round) and a shared **archive** of every page displaced from the slot, so
/// that the per-round snapshot the execution engine takes
/// ([`WorldStrategy::state`]) is two refcount bumps plus scalars: reprinting
/// the same page every round — the steady state of every compact printing
/// experiment — touches no heap at all.
///
/// Under [`CopyMode::Eager`](goc_core::buf::CopyMode) the snapshot instead
/// deep-copies the page and the archive, restoring the value semantics of
/// the pre-zero-copy engine (whose state held owned `Vec`/`BTreeMap` fields
/// and was cloned wholesale into the transcript every round). The E13 bench
/// uses this to price the engine against its predecessor.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PrinterState {
    /// The most recent page and the round it was last printed at.
    last: Option<(Arc<Vec<u8>>, u64)>,
    /// Most-recent print round of every page displaced from `last`.
    archive: Arc<BTreeMap<Vec<u8>, u64>>,
    /// Total pages printed (including reprints).
    pub total_pages: u64,
    /// Rounds elapsed.
    pub round: u64,
}

impl Clone for PrinterState {
    fn clone(&self) -> Self {
        let eager = goc_core::buf::copy_mode() == goc_core::buf::CopyMode::Eager;
        PrinterState {
            last: match (&self.last, eager) {
                (Some((page, round)), true) => Some((Arc::new(page.as_ref().clone()), *round)),
                (last, _) => last.clone(),
            },
            archive: if eager {
                Arc::new(self.archive.as_ref().clone())
            } else {
                Arc::clone(&self.archive)
            },
            total_pages: self.total_pages,
            round: self.round,
        }
    }
}

impl PrinterState {
    /// Round of the most recent print of `document`, if any.
    pub fn prints_of(&self, document: &[u8]) -> Option<u64> {
        if let Some((page, round)) = &self.last {
            if page.as_slice() == document {
                return Some(*round);
            }
        }
        self.archive.get(document).copied()
    }

    /// Has `document` ever been printed?
    pub fn has_printed(&self, document: &[u8]) -> bool {
        self.prints_of(document).is_some()
    }

    /// The most recent page, if any.
    pub fn last_page(&self) -> Option<&[u8]> {
        self.last.as_ref().map(|(page, _)| page.as_slice())
    }

    /// Number of distinct pages ever printed.
    pub fn distinct_pages(&self) -> usize {
        let unarchived_last = match &self.last {
            Some((page, _)) if !self.archive.contains_key(page.as_slice()) => 1,
            _ => 0,
        };
        self.archive.len() + unarchived_last
    }

    /// Records a print of `page` at `round`. Reprints of the current last
    /// page are allocation-free; a *different* page flushes the displaced
    /// one into the archive (copy-on-write, since snapshots share it).
    fn record_print(&mut self, page: &[u8], round: u64) {
        match &mut self.last {
            Some((current, r)) if current.as_slice() == page => *r = round,
            _ => {
                if let Some((displaced, r)) = self.last.take() {
                    let displaced = match Arc::try_unwrap(displaced) {
                        Ok(v) => v,
                        Err(shared) => shared.as_ref().clone(),
                    };
                    Arc::make_mut(&mut self.archive).insert(displaced, r);
                }
                self.last = Some((Arc::new(page.to_vec()), round));
            }
        }
        self.total_pages += 1;
    }
}

/// The printer world strategy.
///
/// Protocol (fixed — this is "the rest of the system", not a negotiable
/// peer):
///
/// - server → world: `JOB:<bytes>` prints `<bytes>` as a page. Empty
///   payloads and anything else are ignored (printers shrug at line noise).
/// - world → user: after printing a page, `TRAY:<bytes>` — the user watches
///   pages land in the output tray. This is the feedback sensing builds on.
#[derive(Clone, Debug)]
pub struct PrinterWorld {
    state: PrinterState,
    /// Scratch buffer for building `TRAY:` reports without a per-print
    /// allocation.
    report_buf: Vec<u8>,
}

impl PrinterWorld {
    /// A printer with `junk_pages` pre-existing pages on the tray (the
    /// "arbitrary start state" of the theorems: someone printed before us).
    pub fn new(junk_pages: usize) -> Self {
        let mut state = PrinterState::default();
        for i in 0..junk_pages {
            let page = format!("junk-{i}").into_bytes();
            state.record_print(&page, 0);
        }
        PrinterWorld { state, report_buf: Vec::new() }
    }
}

impl WorldStrategy for PrinterWorld {
    type State = PrinterState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        let mut out = WorldOut::silence();
        let bytes = input.from_server.as_bytes();
        if bytes.starts_with(JOB_PREFIX) && bytes.len() > JOB_PREFIX.len() {
            let page = &bytes[JOB_PREFIX.len()..];
            self.report_buf.clear();
            self.report_buf.extend_from_slice(TRAY_PREFIX);
            self.report_buf.extend_from_slice(page);
            self.state.record_print(page, ctx.round);
            out = WorldOut::to_user(Message::from_bytes(&self.report_buf));
        }
        self.state.round = ctx.round + 1;
        out
    }

    fn state(&self) -> PrinterState {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::rng::GocRng;

    fn step_world(w: &mut PrinterWorld, round: u64, from_server: &[u8]) -> WorldOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        w.step(
            &mut ctx,
            &WorldIn {
                from_user: Message::silence(),
                from_server: Message::from_bytes(from_server.to_vec()),
            },
        )
    }

    #[test]
    fn prints_valid_jobs_and_reports_tray() {
        let mut w = PrinterWorld::new(0);
        let out = step_world(&mut w, 0, b"JOB:hello");
        assert_eq!(out.to_user.as_bytes(), b"TRAY:hello");
        assert!(w.state().has_printed(b"hello"));
        assert_eq!(w.state().prints_of(b"hello"), Some(0));
        assert_eq!(w.state().total_pages, 1);
        assert_eq!(w.state().last_page(), Some(b"hello".as_slice()));
    }

    #[test]
    fn ignores_malformed_jobs() {
        let mut w = PrinterWorld::new(0);
        assert_eq!(step_world(&mut w, 0, b"PRINT hello"), WorldOut::silence());
        assert_eq!(step_world(&mut w, 1, b"JOB:"), WorldOut::silence());
        assert_eq!(step_world(&mut w, 2, b""), WorldOut::silence());
        assert_eq!(w.state().total_pages, 0);
    }

    #[test]
    fn ignores_direct_user_messages() {
        // The user cannot print directly: only the server channel drives the
        // printer (that is what makes the server necessary).
        let mut w = PrinterWorld::new(0);
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = w.step(
            &mut ctx,
            &WorldIn { from_user: Message::from("JOB:direct"), from_server: Message::silence() },
        );
        assert_eq!(out, WorldOut::silence());
        assert!(!w.state().has_printed(b"direct"));
    }

    #[test]
    fn junk_pages_model_arbitrary_start() {
        let w = PrinterWorld::new(3);
        assert_eq!(w.state().total_pages, 3);
        assert!(w.state().has_printed(b"junk-1"));
    }

    #[test]
    fn prints_of_tracks_most_recent() {
        let mut w = PrinterWorld::new(0);
        step_world(&mut w, 0, b"JOB:a");
        step_world(&mut w, 1, b"JOB:b");
        step_world(&mut w, 2, b"JOB:a");
        assert_eq!(w.state().prints_of(b"a"), Some(2));
        assert_eq!(w.state().prints_of(b"b"), Some(1));
        assert_eq!(w.state().prints_of(b"c"), None);
        assert_eq!(w.state().total_pages, 3);
    }

    #[test]
    fn state_stays_bounded_under_reprints() {
        let mut w = PrinterWorld::new(0);
        for r in 0..10_000 {
            step_world(&mut w, r, b"JOB:heartbeat");
        }
        assert_eq!(w.state().distinct_pages(), 1, "summary, not a log");
        assert_eq!(w.state().total_pages, 10_000);
    }

    #[test]
    fn alternating_pages_keep_latest_rounds() {
        let mut w = PrinterWorld::new(0);
        step_world(&mut w, 0, b"JOB:a");
        step_world(&mut w, 1, b"JOB:b");
        step_world(&mut w, 2, b"JOB:a");
        step_world(&mut w, 3, b"JOB:b");
        // "a" was displaced twice; its archived round must be the latest.
        assert_eq!(w.state().prints_of(b"a"), Some(2));
        assert_eq!(w.state().prints_of(b"b"), Some(3));
        assert_eq!(w.state().distinct_pages(), 2);
        assert_eq!(w.state().last_page(), Some(b"b".as_slice()));
    }

    #[test]
    fn snapshots_are_independent_of_later_prints() {
        let mut w = PrinterWorld::new(0);
        step_world(&mut w, 0, b"JOB:a");
        let snap = w.state();
        step_world(&mut w, 1, b"JOB:a");
        step_world(&mut w, 2, b"JOB:b");
        // The old snapshot must not see prints that happened after it was
        // taken (copy-on-write must not leak through shared archives).
        assert_eq!(snap.prints_of(b"a"), Some(0));
        assert!(!snap.has_printed(b"b"));
        assert_eq!(snap.total_pages, 1);
    }
}
