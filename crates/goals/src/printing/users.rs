//! User strategies for the printing goal, and their enumerable class.

use super::dialect::{tray_report, Dialect};
use goc_core::enumeration::SliceEnumerator;
use goc_core::msg::{Message, UserIn, UserOut};
use goc_core::strategy::{Halt, StepCtx, UserStrategy};

/// A user that submits its document in one assumed [`Dialect`] and watches
/// the output tray.
///
/// - Non-persistent (finite goal): resubmits every round until the tray
///   shows the document, then halts.
/// - Persistent (compact goal): keeps resubmitting forever, pacing
///   submissions so the tray stays fresh.
#[derive(Clone, Debug)]
pub struct PrintingUser {
    document: Vec<u8>,
    dialect: Dialect,
    persistent: bool,
    halt: Option<Halt>,
    resubmit_every: u64,
    /// The framed submission, built once: the dialect and document never
    /// change, so every resubmission is a copy-on-write clone of this
    /// message.
    framed: Message,
}

impl PrintingUser {
    /// A finite-goal user printing `document` in `dialect`.
    pub fn new(document: impl AsRef<[u8]>, dialect: Dialect) -> Self {
        let document = document.as_ref().to_vec();
        let framed = Message::from_bytes(dialect.frame_job(&document));
        PrintingUser { document, dialect, persistent: false, halt: None, resubmit_every: 1, framed }
    }

    /// A compact-goal user reprinting `document` in `dialect` forever.
    pub fn persistent(document: impl AsRef<[u8]>, dialect: Dialect) -> Self {
        let document = document.as_ref().to_vec();
        let framed = Message::from_bytes(dialect.frame_job(&document));
        PrintingUser { document, dialect, persistent: true, halt: None, resubmit_every: 4, framed }
    }

    /// Sets the resubmission period of a persistent user.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_resubmit_every(mut self, every: u64) -> Self {
        assert!(every > 0, "resubmission period must be positive");
        self.resubmit_every = every;
        self
    }

    /// The assumed dialect.
    pub fn dialect(&self) -> &Dialect {
        &self.dialect
    }
}

impl UserStrategy for PrintingUser {
    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if let Some(page) = tray_report(input) {
            if page == self.document.as_slice() && !self.persistent {
                self.halt = Some(Halt::with_output("printed"));
                return UserOut::silence();
            }
        }
        if ctx.round.is_multiple_of(self.resubmit_every) {
            UserOut::to_server(self.framed.clone())
        } else {
            UserOut::silence()
        }
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn fork(&self) -> Option<goc_core::strategy::BoxedUser> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> String {
        format!(
            "printing-user({:#04x}, {:?}{})",
            self.dialect.opcode(),
            self.dialect.encoding(),
            if self.persistent { ", persistent" } else { "" }
        )
    }
}

/// The enumerable class of printing users, one per dialect in `dialects`.
pub fn dialect_class(
    document: impl AsRef<[u8]>,
    dialects: &[Dialect],
    persistent: bool,
) -> SliceEnumerator {
    let document = document.as_ref().to_vec();
    let mut class = SliceEnumerator::new(format!("printing-users(x{})", dialects.len()));
    for dialect in dialects {
        let doc = document.clone();
        let d = dialect.clone();
        class.push(move || {
            if persistent {
                Box::new(PrintingUser::persistent(doc.clone(), d.clone()))
            } else {
                Box::new(PrintingUser::new(doc.clone(), d.clone()))
            }
        });
    }
    class
}

/// Design note (paper §3, closing remark): for *structured* dialect classes
/// a user can do better than enumeration — e.g. binary-searching opcodes or
/// probing encodings with a self-identifying payload. The transmission goal's
/// [`ProbingUser`](crate::transmission::ProbingUser) demonstrates that
/// "efficient special case"; for printing we keep the enumeration honest.
pub fn learning_user_note() -> &'static str {
    "see crate::transmission::ProbingUser for the learning alternative"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printing::Encoding;
    use goc_core::enumeration::StrategyEnumerator;
    use goc_core::rng::GocRng;

    fn step(u: &mut PrintingUser, round: u64, input: &UserIn) -> UserOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        u.step(&mut ctx, input)
    }

    #[test]
    fn submits_framed_job() {
        let d = Dialect::new(0x50, Encoding::Xor(7));
        let mut u = PrintingUser::new("doc", d.clone());
        let out = step(&mut u, 0, &UserIn::default());
        assert_eq!(out.to_server.as_bytes(), d.frame_job(b"doc").as_slice());
    }

    #[test]
    fn halts_when_tray_shows_document() {
        let d = Dialect::new(0x50, Encoding::Identity);
        let mut u = PrintingUser::new("doc", d);
        let tray = UserIn {
            from_server: Message::silence(),
            from_world: Message::from_bytes(b"TRAY:doc".to_vec()),
        };
        let _ = step(&mut u, 0, &tray);
        assert_eq!(UserStrategy::halted(&u), Some(Halt::with_output("printed")));
    }

    #[test]
    fn ignores_other_pages_on_tray() {
        let d = Dialect::new(0x50, Encoding::Identity);
        let mut u = PrintingUser::new("doc", d);
        let tray = UserIn {
            from_server: Message::silence(),
            from_world: Message::from_bytes(b"TRAY:other".to_vec()),
        };
        let _ = step(&mut u, 0, &tray);
        assert!(UserStrategy::halted(&u).is_none());
    }

    #[test]
    fn persistent_user_never_halts() {
        let d = Dialect::new(0x50, Encoding::Identity);
        let mut u = PrintingUser::persistent("doc", d);
        let tray = UserIn {
            from_server: Message::silence(),
            from_world: Message::from_bytes(b"TRAY:doc".to_vec()),
        };
        for round in 0..10 {
            let _ = step(&mut u, round, &tray);
        }
        assert!(UserStrategy::halted(&u).is_none());
    }

    #[test]
    fn persistent_user_paces_submissions() {
        let d = Dialect::new(0x50, Encoding::Identity);
        let mut u = PrintingUser::persistent("doc", d).with_resubmit_every(4);
        let sends: Vec<bool> = (0..8)
            .map(|r| !step(&mut u, r, &UserIn::default()).to_server.is_silence())
            .collect();
        assert_eq!(sends, vec![true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn class_covers_all_dialects() {
        let dialects = Dialect::class(&[1, 2, 3], &[Encoding::Identity, Encoding::Reverse]);
        let class = dialect_class("doc", &dialects, false);
        assert_eq!(class.len(), Some(6));
        assert!(class.strategy(5).is_some());
        assert!(class.strategy(6).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resubmit_period_panics() {
        let _ = PrintingUser::persistent("d", Dialect::new(0, Encoding::Identity))
            .with_resubmit_every(0);
    }
}
