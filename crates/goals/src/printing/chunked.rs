//! Chunked-submission printer drivers: documents arrive over several
//! rounds, and the driver's **frame buffer size** joins the dialect as a
//! compatibility dimension.

use super::dialect::Dialect;
use super::world::JOB_PREFIX;
use crate::framing::{frame, Reassembler};
use goc_core::enumeration::SliceEnumerator;
use goc_core::msg::{Message, ServerIn, ServerOut, UserIn, UserOut};
use goc_core::strategy::{Halt, ServerStrategy, StepCtx, UserStrategy};

/// A printer driver that accepts **framed** job submissions: each user
/// message is `<opcode><encoded frame>`; frames are reassembled and the
/// completed document is sent to the printer.
///
/// The driver drops any frame whose encoded payload exceeds its
/// `buffer_size` — an undersized peripheral buffer, the classic silent
/// incompatibility. A compatible user must therefore match the dialect
/// *and* keep its chunks small enough.
#[derive(Clone, Debug)]
pub struct ChunkedDriverServer {
    dialect: Dialect,
    buffer_size: usize,
    reassembler: Reassembler,
}

impl ChunkedDriverServer {
    /// A chunked driver speaking `dialect` with a `buffer_size`-byte frame
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_size` cannot hold even a one-byte chunk (frames
    /// carry a 5-byte header).
    pub fn new(dialect: Dialect, buffer_size: usize) -> Self {
        assert!(buffer_size >= 6, "buffer must hold a header plus at least one byte");
        ChunkedDriverServer { dialect, buffer_size, reassembler: Reassembler::new() }
    }

    /// The driver's dialect.
    pub fn dialect(&self) -> &Dialect {
        &self.dialect
    }

    /// The frame buffer size in bytes.
    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }
}

impl ServerStrategy for ChunkedDriverServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        let Some(frame_bytes) = self.dialect.parse_job(input.from_user.as_bytes()) else {
            return ServerOut::silence();
        };
        if frame_bytes.len() > self.buffer_size {
            return ServerOut::silence(); // silently dropped: buffer overflow
        }
        match self.reassembler.feed(&frame_bytes) {
            Some(document) => {
                let mut job = JOB_PREFIX.to_vec();
                job.extend_from_slice(&document);
                ServerOut::to_world(Message::from_bytes(job))
            }
            None => ServerOut::silence(),
        }
    }

    fn name(&self) -> String {
        format!(
            "chunked-driver({:#04x}, {:?}, buf={})",
            self.dialect.opcode(),
            self.dialect.encoding(),
            self.buffer_size
        )
    }
}

/// A user that submits its document as a framed chunk stream in one assumed
/// dialect and chunk size, then watches the tray (see
/// [`PrintingUser`](super::PrintingUser) for the single-message variant).
#[derive(Clone, Debug)]
pub struct ChunkedPrintingUser {
    frames: Vec<Vec<u8>>,
    dialect: Dialect,
    document: Vec<u8>,
    cursor: usize,
    halt: Option<Halt>,
}

impl ChunkedPrintingUser {
    /// A user printing `document` in `dialect`, chunked to `chunk_size`
    /// payload bytes per frame.
    ///
    /// # Panics
    ///
    /// Panics if `document` is empty or `chunk_size == 0`.
    pub fn new(document: impl AsRef<[u8]>, dialect: Dialect, chunk_size: usize) -> Self {
        let document = document.as_ref().to_vec();
        let frames = frame(&document, chunk_size);
        ChunkedPrintingUser { frames, dialect, document, cursor: 0, halt: None }
    }
}

impl UserStrategy for ChunkedPrintingUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if let Some(page) = input.from_world.as_bytes().strip_prefix(super::world::TRAY_PREFIX) {
            if page == self.document.as_slice() {
                self.halt = Some(Halt::with_output("printed"));
                return UserOut::silence();
            }
        }
        // Stream the frames cyclically (resubmitting the whole document if
        // a pass did not result in a tray report).
        let frame_bytes = &self.frames[self.cursor % self.frames.len()];
        self.cursor += 1;
        UserOut::to_server(Message::from_bytes(self.dialect.frame_job(frame_bytes)))
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }

    fn name(&self) -> String {
        format!(
            "chunked-printing-user({:#04x}, {:?}, {} frames)",
            self.dialect.opcode(),
            self.dialect.encoding(),
            self.frames.len()
        )
    }
}

/// The enumerable class over dialects × chunk sizes.
pub fn chunked_class(
    document: impl AsRef<[u8]>,
    dialects: &[Dialect],
    chunk_sizes: &[usize],
) -> SliceEnumerator {
    let document = document.as_ref().to_vec();
    let mut class = SliceEnumerator::new(format!(
        "chunked-printing-users(x{})",
        dialects.len() * chunk_sizes.len()
    ));
    for dialect in dialects {
        for &chunk_size in chunk_sizes {
            let doc = document.clone();
            let d = dialect.clone();
            class.push(move || {
                Box::new(ChunkedPrintingUser::new(doc.clone(), d.clone(), chunk_size))
            });
        }
    }
    class
}

#[cfg(test)]
mod tests {
    use super::super::{PrintGoal, TraySensing};
    use super::*;
    use crate::codec::Encoding;
    use goc_core::exec::Execution;
    use goc_core::goal::{evaluate_finite, Goal};
    use goc_core::prelude::*;

    fn dialect() -> Dialect {
        Dialect::new(0x50, Encoding::Xor(0x2a))
    }

    #[test]
    fn chunked_informed_user_prints_long_document() {
        let doc = "a-rather-long-document-that-will-not-fit-in-one-frame".repeat(3);
        let goal = PrintGoal::new(doc.as_bytes());
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(ChunkedDriverServer::new(dialect(), 16)),
            Box::new(ChunkedPrintingUser::new(doc.as_bytes(), dialect(), 8)),
            rng,
        );
        let t = exec.run(200);
        assert!(evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn oversized_chunks_are_silently_dropped() {
        let doc = b"0123456789abcdef0123456789abcdef";
        let goal = PrintGoal::new(doc);
        let mut rng = GocRng::seed_from_u64(2);
        // Buffer 10 < header(5) + chunk(16): every frame dropped.
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(ChunkedDriverServer::new(dialect(), 10)),
            Box::new(ChunkedPrintingUser::new(doc, dialect(), 16)),
            rng,
        );
        let t = exec.run(200);
        assert!(!evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn universal_user_finds_dialect_and_chunk_size() {
        let doc = b"chunked-universality-demo-document";
        let goal = PrintGoal::new(doc);
        let dialects =
            Dialect::class(&[0x50, 0x60], &[Encoding::Identity, Encoding::Xor(0x2a)]);
        let chunk_sizes = [4usize, 32];
        // Server: dialect index 3, buffer 12 → only chunk size 4 fits.
        let server = ChunkedDriverServer::new(dialects[3].clone(), 12);
        let universal = goc_core::universal::LevinUniversalUser::round_robin(
            Box::new(chunked_class(doc, &dialects, &chunk_sizes)),
            Box::new(TraySensing::new(doc)),
            32,
        );
        let mut rng = GocRng::seed_from_u64(3);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(server),
            Box::new(universal),
            rng,
        );
        let t = exec.run(200_000);
        let v = evaluate_finite(&goal, &t);
        assert!(v.achieved, "{v:?}");
    }

    #[test]
    fn chunked_class_size_is_the_product() {
        use goc_core::enumeration::StrategyEnumerator;
        let dialects = Dialect::class(&[1, 2, 3], &[Encoding::Identity]);
        let class = chunked_class("doc", &dialects, &[4, 8]);
        assert_eq!(class.len(), Some(6));
    }

    #[test]
    fn driver_ignores_foreign_dialects_and_noise() {
        let mut s = ChunkedDriverServer::new(dialect(), 64);
        let mut rng = GocRng::seed_from_u64(4);
        let mut ctx = StepCtx::new(0, &mut rng);
        for noise in [&b""[..], b"garbage", &[0x51, 1, 2, 3]] {
            let out = s.step(
                &mut ctx,
                &ServerIn {
                    from_user: Message::from_bytes(noise.to_vec()),
                    from_world: Message::silence(),
                },
            );
            assert_eq!(out, ServerOut::silence());
        }
    }

    #[test]
    #[should_panic(expected = "header")]
    fn tiny_buffer_panics() {
        let _ = ChunkedDriverServer::new(dialect(), 5);
    }

    #[test]
    fn names_describe_configuration() {
        let s = ChunkedDriverServer::new(dialect(), 32);
        assert!(s.name().contains("buf=32"));
        let u = ChunkedPrintingUser::new("doc", dialect(), 1);
        assert!(u.name().contains("3 frames"));
    }
}
