//! **The printing goal** — the paper's flagship example (§1):
//!
//! > "the problem of using a printer to produce a document – which cannot be
//! > cast as a problem of delegating computation in any reasonable sense – is
//! > captured naturally by the simple model introduced in the current work."
//!
//! The world owns a printer and reports, to the user, everything that comes
//! out of the output tray. The server is a *printer driver*: it understands
//! job submissions in its own **dialect** (an opcode byte plus a payload
//! encoding, unknown to the user) and drives the printer on the user's
//! behalf. The user wants a specific document to be printed.
//!
//! - Finite variant ([`PrintGoal`]): the document must be printed once.
//! - Compact variant ([`CompactPrintGoal`]): the document must keep being
//!   reprinted (think of a heartbeat page or a displayed form that expires).
//!
//! Sensing comes from the output tray: the user *sees* what was printed
//! ([`tray_sensing`]) — safe because the tray does not lie, viable because a
//! driver-compatible user gets its document onto the tray.

mod chunked;
mod dialect;
mod sensing;
mod users;
mod world;

pub use chunked::{chunked_class, ChunkedDriverServer, ChunkedPrintingUser};
pub use dialect::{Dialect, DriverServer, Encoding};
pub use sensing::{tray_sensing, TraySensing};
pub use users::{dialect_class, learning_user_note, PrintingUser};
pub use world::{PrinterState, PrinterWorld};

use goc_core::goal::{CompactGoal, FiniteGoal, Goal, GoalKind};
use goc_core::rng::GocRng;
use goc_core::strategy::Halt;

/// The finite printing goal: `document` must appear in the printer's output
/// log before the user halts.
#[derive(Clone, Debug)]
pub struct PrintGoal {
    document: Vec<u8>,
}

impl PrintGoal {
    /// A goal of printing `document`.
    ///
    /// # Panics
    ///
    /// Panics if `document` is empty (the printer ignores empty jobs).
    pub fn new(document: impl AsRef<[u8]>) -> Self {
        let document = document.as_ref().to_vec();
        assert!(!document.is_empty(), "PrintGoal requires a non-empty document");
        PrintGoal { document }
    }

    /// The target document.
    pub fn document(&self) -> &[u8] {
        &self.document
    }
}

impl Goal for PrintGoal {
    type World = PrinterWorld;

    fn spawn_world(&self, rng: &mut GocRng) -> PrinterWorld {
        PrinterWorld::new(rng.below(4) as usize) // arbitrary start: junk pages already printed
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Finite
    }

    fn name(&self) -> String {
        "printing".to_string()
    }
}

impl FiniteGoal for PrintGoal {
    fn accepts(&self, history: &[PrinterState], _halt: &Halt) -> bool {
        history.last().map(|s| s.has_printed(&self.document)).unwrap_or(false)
    }
}

/// The compact printing goal: `document` must be reprinted at least every
/// `window` rounds (after a one-window start-up grace).
#[derive(Clone, Debug)]
pub struct CompactPrintGoal {
    document: Vec<u8>,
    window: u64,
}

impl CompactPrintGoal {
    /// A goal of keeping `document` freshly printed every `window` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `document` is empty or `window == 0`.
    pub fn new(document: impl AsRef<[u8]>, window: u64) -> Self {
        let document = document.as_ref().to_vec();
        assert!(!document.is_empty(), "CompactPrintGoal requires a non-empty document");
        assert!(window > 0, "CompactPrintGoal requires a positive window");
        CompactPrintGoal { document, window }
    }

    /// The target document.
    pub fn document(&self) -> &[u8] {
        &self.document
    }

    /// The reprint window.
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Goal for CompactPrintGoal {
    type World = PrinterWorld;

    fn spawn_world(&self, rng: &mut GocRng) -> PrinterWorld {
        PrinterWorld::new(rng.below(4) as usize)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Compact
    }

    fn name(&self) -> String {
        "printing-compact".to_string()
    }
}

impl CompactGoal for CompactPrintGoal {
    fn prefix_acceptable(&self, prefix: &[PrinterState]) -> bool {
        let Some(last) = prefix.last() else { return true };
        if last.round < self.window {
            return true;
        }
        last.prints_of(&self.document)
            .map(|r| last.round - r <= self.window)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::exec::Execution;
    use goc_core::goal::{evaluate_compact, evaluate_finite};

    #[test]
    fn informed_user_prints_through_matching_driver() {
        let goal = PrintGoal::new("report.pdf");
        let dialect = Dialect::new(0x50, Encoding::Xor(0x2a));
        let mut rng = GocRng::seed_from_u64(1);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(DriverServer::new(dialect.clone())),
            Box::new(PrintingUser::new("report.pdf", dialect)),
            rng,
        );
        let t = exec.run(60);
        let v = evaluate_finite(&goal, &t);
        assert!(v.achieved, "verdict: {v:?}");
    }

    #[test]
    fn mismatched_dialect_fails() {
        let goal = PrintGoal::new("report.pdf");
        let mut rng = GocRng::seed_from_u64(2);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(DriverServer::new(Dialect::new(0x50, Encoding::Xor(0x2a)))),
            Box::new(PrintingUser::new("report.pdf", Dialect::new(0x51, Encoding::Identity))),
            rng,
        );
        let t = exec.run(60);
        assert!(!evaluate_finite(&goal, &t).achieved);
    }

    #[test]
    fn compact_goal_needs_reprinting() {
        let goal = CompactPrintGoal::new("badge", 24);
        let dialect = Dialect::new(0x10, Encoding::Identity);
        let mut rng = GocRng::seed_from_u64(3);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(DriverServer::new(dialect.clone())),
            Box::new(PrintingUser::persistent("badge", dialect)),
            rng,
        );
        let t = exec.run_for(600);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(100), "verdict: {v:?}");
    }

    #[test]
    fn goal_constructors_validate() {
        assert!(std::panic::catch_unwind(|| PrintGoal::new("")).is_err());
        assert!(std::panic::catch_unwind(|| CompactPrintGoal::new("x", 0)).is_err());
        assert_eq!(PrintGoal::new("x").document(), b"x");
        assert_eq!(CompactPrintGoal::new("x", 5).window(), 5);
    }

    #[test]
    fn goal_kinds_and_names() {
        assert_eq!(PrintGoal::new("d").kind(), GoalKind::Finite);
        assert_eq!(CompactPrintGoal::new("d", 8).kind(), GoalKind::Compact);
        assert_eq!(PrintGoal::new("d").name(), "printing");
    }
}
