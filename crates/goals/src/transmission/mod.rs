//! **The transmission goal** — deliver the world's challenges back to it
//! intact, through a server that garbles everything with an unknown byte
//! transformation.
//!
//! This is the Shannon-flavoured goal the paper contrasts itself against:
//! here the *content* is known (the world announces it), and the entire
//! difficulty is the lack of a shared language with the server. It is a
//! **compact** goal: fresh challenges keep coming, and success means all but
//! finitely many of them are delivered in time.
//!
//! The module also hosts [`ProbingUser`], the *learning* user that
//! reconstructs the transformation from the world's echoes instead of
//! enumerating a transform class — the concrete face of the paper's closing
//! remark that efficient algorithms exist for broad special cases (and of
//! the Juba–Vempala on-line-learning connection, crate `goc-learning`).

mod sensing;
mod servers;
mod users;
mod world;

pub use sensing::{ok_sensing, OkSensing};
pub use servers::{PipeServer, Transform};
pub use users::{transform_class, EncoderUser, ProbingUser};
pub use world::{parse_broadcast, ChannelState, ChannelWorld, Feedback};

use goc_core::goal::{CompactGoal, Goal, GoalKind};
use goc_core::rng::GocRng;

/// The compact transmission goal.
///
/// A prefix is acceptable iff the current challenge is either answered or
/// younger than `grace` rounds — so an execution succeeds iff all but
/// finitely many challenges are delivered within the grace period.
#[derive(Clone, Debug)]
pub struct TransmissionGoal {
    challenge_len: usize,
    period: u64,
    grace: u64,
}

impl TransmissionGoal {
    /// A goal with `challenge_len`-byte challenges, a fresh challenge every
    /// `period` rounds, and a delivery grace of `grace` rounds.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `grace >= period` (unanswerable
    /// schedules are not forgiving).
    pub fn new(challenge_len: usize, period: u64, grace: u64) -> Self {
        assert!(challenge_len > 0, "challenge_len must be positive");
        assert!(period > 0 && grace > 0, "period and grace must be positive");
        assert!(grace < period, "grace must be shorter than the period");
        TransmissionGoal { challenge_len, period, grace }
    }

    /// The challenge length in bytes.
    pub fn challenge_len(&self) -> usize {
        self.challenge_len
    }

    /// The challenge period in rounds.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The delivery grace in rounds.
    pub fn grace(&self) -> u64 {
        self.grace
    }
}

impl Goal for TransmissionGoal {
    type World = ChannelWorld;

    fn spawn_world(&self, rng: &mut GocRng) -> ChannelWorld {
        ChannelWorld::new(self.challenge_len, self.period, rng)
    }

    fn kind(&self) -> GoalKind {
        GoalKind::Compact
    }

    fn name(&self) -> String {
        "transmission".to_string()
    }
}

impl CompactGoal for TransmissionGoal {
    fn prefix_acceptable(&self, prefix: &[ChannelState]) -> bool {
        let Some(last) = prefix.last() else { return true };
        last.answered || last.round.saturating_sub(last.challenge_round) <= self.grace
    }
}

impl goc_core::score::ScoredGoal for TransmissionGoal {
    /// Quality = fraction of issued challenges delivered in time.
    fn score(&self, history: &[ChannelState]) -> f64 {
        let Some(last) = history.last() else { return 0.0 };
        if last.issued == 0 {
            return 0.0;
        }
        last.completed as f64 / last.issued as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoding;
    use goc_core::exec::Execution;
    use goc_core::goal::evaluate_compact;
    use goc_core::prelude::*;

    fn run_user(
        user: BoxedUser,
        transform: Transform,
        horizon: u64,
        seed: u64,
    ) -> goc_core::goal::CompactVerdict {
        let goal = TransmissionGoal::new(3, 40, 20);
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(PipeServer::new(transform)),
            user,
            rng,
        );
        let t = exec.run_for(horizon);
        evaluate_compact(&goal, &t)
    }

    #[test]
    fn matching_encoder_sustains_the_goal() {
        let t = Transform::Enc(Encoding::Xor(0x5a));
        let v = run_user(Box::new(EncoderUser::new(t.clone())), t, 800, 1);
        assert!(v.achieved(200), "verdict: {v:?}");
    }

    #[test]
    fn mismatched_encoder_fails_forever() {
        let v = run_user(
            Box::new(EncoderUser::new(Transform::Enc(Encoding::Xor(1)))),
            Transform::Enc(Encoding::Xor(2)),
            800,
            2,
        );
        assert!(!v.achieved(200), "verdict: {v:?}");
        assert!(v.bad_prefixes > 100);
    }

    #[test]
    fn probing_user_learns_any_table() {
        // A seeded 256-byte permutation: enumeration over tables would need
        // to guess the seed; the prober just learns the mapping.
        let v = run_user(Box::new(ProbingUser::new()), Transform::Table(1234), 3000, 3);
        assert!(v.achieved(300), "verdict: {v:?}");
    }

    #[test]
    fn probing_user_handles_structured_transforms_as_well() {
        let v = run_user(Box::new(ProbingUser::new()), Transform::Enc(Encoding::Rot(200)), 3000, 4);
        assert!(v.achieved(300), "verdict: {v:?}");
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| TransmissionGoal::new(0, 10, 5)).is_err());
        assert!(std::panic::catch_unwind(|| TransmissionGoal::new(3, 10, 10)).is_err());
        let g = TransmissionGoal::new(3, 10, 5);
        assert_eq!((g.challenge_len(), g.period(), g.grace()), (3, 10, 5));
        assert_eq!(g.kind(), GoalKind::Compact);
    }
}
