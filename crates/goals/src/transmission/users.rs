//! User strategies for the transmission goal: the enumeration class and the
//! probing *learner* that beats it.

use super::servers::Transform;
use super::world::{parse_broadcast, Feedback};
use goc_core::enumeration::SliceEnumerator;
use goc_core::msg::{Message, UserIn, UserOut};
use goc_core::strategy::{StepCtx, UserStrategy};

/// A user that assumes one [`Transform`] and pre-inverts every challenge.
///
/// The member of the enumeration class: correct iff its guess matches the
/// pipe's actual transform.
#[derive(Clone, Debug)]
pub struct EncoderUser {
    guess: Transform,
    last_challenge: Option<Vec<u8>>,
}

impl EncoderUser {
    /// A user assuming the pipe applies `guess`.
    pub fn new(guess: Transform) -> Self {
        EncoderUser { guess, last_challenge: None }
    }
}

impl UserStrategy for EncoderUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if let Some((challenge, _)) = parse_broadcast(input.from_world.as_bytes()) {
            self.last_challenge = Some(challenge);
        }
        match &self.last_challenge {
            Some(c) => UserOut::to_server(Message::from_bytes(self.guess.invert(c))),
            None => UserOut::silence(),
        }
    }

    fn name(&self) -> String {
        format!("encoder-user({:?})", self.guess)
    }
}

/// The enumerable class of [`EncoderUser`]s over a transform family.
pub fn transform_class(family: &[Transform]) -> SliceEnumerator {
    let mut class = SliceEnumerator::new(format!("encoder-users(x{})", family.len()));
    for t in family {
        let t = t.clone();
        class.push(move || Box::new(EncoderUser::new(t.clone())));
    }
    class
}

/// The **learning** user (paper §3's closing remark, and the bridge to
/// Juba–Vempala \[5\]): instead of enumerating transforms, it *probes* the
/// channel one byte per round and reads the world's `GOT:` echoes to
/// reconstruct the transformation table, then inverts challenges exactly.
///
/// Cost: one probe per unknown byte value (≤ 256 rounds) — *independent of
/// the size of the transform class*, while enumeration pays for every wrong
/// class member it tries first.
#[derive(Clone, Debug)]
pub struct ProbingUser {
    /// `map[b] = Some(T(b))` once byte `b` has been probed.
    map: Vec<Option<u8>>,
    /// Probes sent but not yet matched with an echo (FIFO).
    pending: std::collections::VecDeque<u8>,
    next_probe: u16,
    last_challenge: Option<Vec<u8>>,
}

impl ProbingUser {
    /// A fresh learner with an empty table.
    pub fn new() -> Self {
        ProbingUser {
            map: vec![None; 256],
            pending: std::collections::VecDeque::new(),
            next_probe: 0,
            last_challenge: None,
        }
    }

    /// Number of byte mappings learned so far.
    pub fn learned(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }

    /// Looks up the pre-image of each challenge byte, if fully known.
    fn invert_challenge(&self, challenge: &[u8]) -> Option<Vec<u8>> {
        challenge
            .iter()
            .map(|&c| {
                self.map
                    .iter()
                    .position(|&m| m == Some(c))
                    .map(|b| b as u8)
            })
            .collect()
    }
}

impl Default for ProbingUser {
    fn default() -> Self {
        Self::new()
    }
}

impl UserStrategy for ProbingUser {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if let Some((challenge, feedback)) = parse_broadcast(input.from_world.as_bytes()) {
            self.last_challenge = Some(challenge);
            // Match echoes with pending probes (FIFO, one byte per probe).
            match feedback {
                Feedback::Got(bytes) if bytes.len() == 1 => {
                    if let Some(probe) = self.pending.pop_front() {
                        self.map[probe as usize] = Some(bytes[0]);
                    }
                }
                Feedback::Ok => {
                    // Our probe happened to equal the challenge (len-1
                    // challenge): learn nothing but clear the slot.
                    self.pending.pop_front();
                }
                _ => {}
            }
        }

        let Some(challenge) = self.last_challenge.clone() else {
            return UserOut::silence();
        };

        // If the table already inverts the challenge, transmit it.
        if let Some(word) = self.invert_challenge(&challenge) {
            return UserOut::to_server(Message::from_bytes(word));
        }

        // Otherwise keep probing un-probed bytes, one per round.
        while self.next_probe < 256 {
            let b = self.next_probe as u8;
            self.next_probe += 1;
            if self.map[b as usize].is_none() && !self.pending.contains(&b) {
                self.pending.push_back(b);
                return UserOut::to_server(Message::from_bytes(vec![b]));
            }
        }
        UserOut::silence()
    }

    fn name(&self) -> String {
        format!("probing-user({} learned)", self.learned())
    }
}

#[cfg(test)]
mod tests {
    use super::super::world::{CHAL_PREFIX, GOT_PREFIX, SEP};
    use super::*;
    use crate::codec::Encoding;
    use goc_core::rng::GocRng;

    fn broadcast(challenge: &[u8], feedback: Option<&[u8]>) -> Message {
        let mut m = CHAL_PREFIX.to_vec();
        m.extend_from_slice(challenge);
        if let Some(fb) = feedback {
            m.push(SEP);
            m.extend_from_slice(fb);
        }
        Message::from_bytes(m)
    }

    fn step_user(u: &mut dyn UserStrategy, round: u64, from_world: Message) -> UserOut {
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(round, &mut rng);
        u.step(&mut ctx, &UserIn { from_server: Message::silence(), from_world })
    }

    #[test]
    fn encoder_user_inverts_challenge() {
        let t = Transform::Enc(Encoding::Rot(5));
        let mut u = EncoderUser::new(t.clone());
        let out = step_user(&mut u, 0, broadcast(b"abc", None));
        assert_eq!(t.apply(out.to_server.as_bytes()), b"abc".to_vec());
    }

    #[test]
    fn encoder_user_silent_without_challenge() {
        let mut u = EncoderUser::new(Transform::Enc(Encoding::Identity));
        let out = step_user(&mut u, 0, Message::silence());
        assert!(out.to_server.is_silence());
    }

    #[test]
    fn transform_class_enumerates_family() {
        use goc_core::enumeration::StrategyEnumerator;
        let fam = Transform::family(&[1], &[2], &[3]);
        let class = transform_class(&fam);
        assert_eq!(class.len(), Some(4));
    }

    #[test]
    fn probing_user_probes_and_learns() {
        let mut u = ProbingUser::new();
        // Challenge "ab"; user starts probing from byte 0.
        let out = step_user(&mut u, 0, broadcast(b"ab", None));
        assert_eq!(out.to_server.as_bytes(), &[0]);
        // Echo: T(0) = 0x10.
        let mut fb = GOT_PREFIX.to_vec();
        fb.push(0x10);
        let out2 = step_user(&mut u, 1, broadcast(b"ab", Some(&fb)));
        assert_eq!(u.learned(), 1);
        assert_eq!(out2.to_server.as_bytes(), &[1], "next probe");
    }

    #[test]
    fn probing_user_transmits_once_table_covers_challenge() {
        let mut u = ProbingUser::new();
        // Pretend bytes 3 and 4 map onto the challenge letters.
        u.map[3] = Some(b'h');
        u.map[4] = Some(b'i');
        let out = step_user(&mut u, 0, broadcast(b"hi", None));
        assert_eq!(out.to_server.as_bytes(), &[3, 4]);
    }

    #[test]
    fn probing_user_learns_whole_rot_table_in_simulation() {
        // Closed-loop mini-simulation: the "server" applies Rot(7) to each
        // probe and we feed the echo back.
        let t = Transform::Enc(Encoding::Rot(7));
        let mut u = ProbingUser::new();
        let challenge = b"zz"; // forces a long probe phase ('z' + learning)
        let mut last_sent: Option<Vec<u8>> = None;
        for round in 0..600 {
            let fb_msg = match &last_sent {
                Some(bytes) if bytes.len() == 1 => {
                    let mut fb = GOT_PREFIX.to_vec();
                    fb.extend(t.apply(bytes));
                    broadcast(challenge, Some(&fb))
                }
                _ => broadcast(challenge, None),
            };
            let out = step_user(&mut u, round, fb_msg);
            let sent = out.to_server.as_bytes().to_vec();
            if sent.len() > 1 {
                // Transmission attempt: must invert exactly.
                assert_eq!(t.apply(&sent), challenge.to_vec());
                return;
            }
            last_sent = if sent.is_empty() { None } else { Some(sent) };
        }
        panic!("probing user never transmitted (learned {})", u.learned());
    }
}
