//! Sensing for the transmission goal: the world's `OK` feedback.

use super::world::{parse_broadcast, Feedback};
use goc_core::sensing::{Indication, Sensing};
use goc_core::view::ViewEvent;

/// Sensing that is **positive** on each `OK` feedback (a challenge was
/// delivered intact).
///
/// - *Safety* (compact, when wrapped in
///   [`Deadline`](goc_core::sensing::Deadline)): a failing pairing stops
///   earning `OK`s, so the deadline keeps firing negatives.
/// - *Viability*: a transform-matched (or fully-taught) user earns an `OK`
///   every challenge period, silencing the deadline forever.
#[derive(Clone, Debug, Default)]
pub struct OkSensing;

impl Sensing for OkSensing {
    fn observe(&mut self, event: &ViewEvent) -> Indication {
        match parse_broadcast(event.received.from_world.as_bytes()) {
            Some((_, Feedback::Ok)) => Indication::Positive,
            _ => Indication::Silent,
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        "ok".to_string()
    }
}

/// Convenience constructor for [`OkSensing`].
pub fn ok_sensing() -> OkSensing {
    OkSensing
}

#[cfg(test)]
mod tests {
    use super::super::world::{CHAL_PREFIX, GOT_PREFIX, OK_TAG, SEP};
    use super::*;
    use goc_core::msg::{Message, UserIn, UserOut};

    fn event(from_world: Vec<u8>) -> ViewEvent {
        ViewEvent {
            round: 0,
            received: UserIn {
                from_server: Message::silence(),
                from_world: Message::from_bytes(from_world),
            },
            sent: UserOut::silence(),
        }
    }

    fn broadcast(challenge: &[u8], feedback: Option<&[u8]>) -> Vec<u8> {
        let mut m = CHAL_PREFIX.to_vec();
        m.extend_from_slice(challenge);
        if let Some(fb) = feedback {
            m.push(SEP);
            m.extend_from_slice(fb);
        }
        m
    }

    #[test]
    fn positive_on_ok_only() {
        let mut s = ok_sensing();
        assert_eq!(s.observe(&event(broadcast(b"abc", Some(OK_TAG)))), Indication::Positive);
        assert_eq!(s.observe(&event(broadcast(b"abc", None))), Indication::Silent);
        let mut got = GOT_PREFIX.to_vec();
        got.push(0x33);
        assert_eq!(s.observe(&event(broadcast(b"abc", Some(&got)))), Indication::Silent);
        assert_eq!(s.observe(&event(b"noise".to_vec())), Indication::Silent);
    }

    #[test]
    fn stateless() {
        let mut s = ok_sensing();
        s.reset();
        assert_eq!(s.name(), "ok");
        assert_eq!(s.observe(&event(broadcast(b"x", Some(OK_TAG)))), Indication::Positive);
    }
}
