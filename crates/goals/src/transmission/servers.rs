//! Pipe servers: forward the user's bytes to the world through an unknown
//! transformation.

use crate::codec::Encoding;
use goc_core::msg::{Message, ServerIn, ServerOut};
use goc_core::rng::GocRng;
use goc_core::strategy::{ServerStrategy, StepCtx};

/// A byte-level channel transformation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transform {
    /// One of the structured [`Encoding`]s.
    Enc(Encoding),
    /// An arbitrary byte permutation (seeded); the hard case for
    /// enumeration, the showcase for the learning user.
    Table(u64),
}

impl Transform {
    /// Materializes the byte-substitution table of this transform.
    ///
    /// For [`Transform::Enc`] variants the table mirrors the encoding
    /// applied byte-wise; note `Encoding::Reverse` is *not* byte-wise and is
    /// therefore rejected.
    ///
    /// # Panics
    ///
    /// Panics for `Transform::Enc(Encoding::Reverse)`.
    pub fn table(&self) -> [u8; 256] {
        let mut t = [0u8; 256];
        match self {
            Transform::Enc(Encoding::Reverse) => {
                panic!("Reverse is not a byte-wise transform")
            }
            Transform::Enc(enc) => {
                for (i, slot) in t.iter_mut().enumerate() {
                    *slot = enc.encode(&[i as u8])[0];
                }
            }
            Transform::Table(seed) => {
                let mut rng = GocRng::seed_from_u64(*seed);
                let perm = rng.permutation(256);
                for (i, slot) in t.iter_mut().enumerate() {
                    *slot = perm[i] as u8;
                }
            }
        }
        t
    }

    /// Applies the transform to a payload.
    pub fn apply(&self, payload: &[u8]) -> Vec<u8> {
        let t = self.table();
        payload.iter().map(|&b| t[b as usize]).collect()
    }

    /// Applies the inverse transform.
    pub fn invert(&self, wire: &[u8]) -> Vec<u8> {
        let t = self.table();
        let mut inv = [0u8; 256];
        for (i, &o) in t.iter().enumerate() {
            inv[o as usize] = i as u8;
        }
        wire.iter().map(|&b| inv[b as usize]).collect()
    }

    /// A canonical finite transform family: byte-wise encodings plus `k`
    /// seeded permutation tables.
    pub fn family(xor_masks: &[u8], rot_shifts: &[u8], table_seeds: &[u64]) -> Vec<Transform> {
        let mut out = vec![Transform::Enc(Encoding::Identity)];
        out.extend(xor_masks.iter().map(|&m| Transform::Enc(Encoding::Xor(m))));
        out.extend(rot_shifts.iter().map(|&s| Transform::Enc(Encoding::Rot(s))));
        out.extend(table_seeds.iter().map(|&s| Transform::Table(s)));
        out
    }
}

/// A server that pipes the user's bytes to the world through a
/// [`Transform`]. It sends nothing to the user: all feedback flows directly
/// from the world.
#[derive(Clone, Debug)]
pub struct PipeServer {
    transform: Transform,
    table: [u8; 256],
}

impl PipeServer {
    /// A pipe applying `transform`.
    pub fn new(transform: Transform) -> Self {
        let table = transform.table();
        PipeServer { transform, table }
    }

    /// The pipe's transform.
    pub fn transform(&self) -> &Transform {
        &self.transform
    }
}

impl ServerStrategy for PipeServer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &ServerIn) -> ServerOut {
        if input.from_user.is_silence() {
            return ServerOut::silence();
        }
        let wire: Vec<u8> =
            input.from_user.as_bytes().iter().map(|&b| self.table[b as usize]).collect();
        ServerOut::to_world(Message::from_bytes(wire))
    }

    fn name(&self) -> String {
        format!("pipe({:?})", self.transform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_transforms_roundtrip() {
        for t in Transform::family(&[1, 0xaa], &[13], &[7, 8]) {
            let data = b"hello world \x00\xff";
            assert_eq!(t.invert(&t.apply(data)), data.to_vec(), "{t:?}");
        }
    }

    #[test]
    fn table_transform_is_a_permutation() {
        let t = Transform::Table(42).table();
        let mut seen = [false; 256];
        for &b in t.iter() {
            assert!(!seen[b as usize], "duplicate output {b}");
            seen[b as usize] = true;
        }
    }

    #[test]
    fn same_seed_same_table() {
        assert_eq!(Transform::Table(1).table(), Transform::Table(1).table());
        assert_ne!(Transform::Table(1).table(), Transform::Table(2).table());
    }

    #[test]
    #[should_panic(expected = "byte-wise")]
    fn reverse_transform_rejected() {
        let _ = Transform::Enc(Encoding::Reverse).table();
    }

    #[test]
    fn pipe_applies_transform() {
        let t = Transform::Enc(Encoding::Xor(0x55));
        let mut s = PipeServer::new(t.clone());
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        let out = s.step(
            &mut ctx,
            &ServerIn { from_user: Message::from("abc"), from_world: Message::silence() },
        );
        assert_eq!(out.to_world.as_bytes(), t.apply(b"abc").as_slice());
        assert!(out.to_user.is_silence());
    }

    #[test]
    fn pipe_is_silent_on_silence() {
        let mut s = PipeServer::new(Transform::Enc(Encoding::Identity));
        let mut rng = GocRng::seed_from_u64(0);
        let mut ctx = StepCtx::new(0, &mut rng);
        assert_eq!(s.step(&mut ctx, &ServerIn::default()), ServerOut::silence());
    }

    #[test]
    fn family_size() {
        let fam = Transform::family(&[1, 2], &[3], &[4, 5, 6]);
        assert_eq!(fam.len(), 1 + 2 + 1 + 3);
    }
}
