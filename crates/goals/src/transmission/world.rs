//! The channel world: issues challenges, echoes what it receives.

use goc_core::msg::{Message, WorldIn, WorldOut};
use goc_core::rng::GocRng;
use goc_core::strategy::{StepCtx, WorldStrategy};

/// Challenge alphabet (lowercase letters — keeps the wire format
/// unambiguous; deliveries may still be arbitrary bytes).
pub(crate) const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz";

/// Wire prefix of the challenge broadcast.
pub(crate) const CHAL_PREFIX: &[u8] = b"CHAL:";
/// Feedback separator.
pub(crate) const SEP: u8 = b'|';
/// Feedback when the current challenge was delivered intact.
pub(crate) const OK_TAG: &[u8] = b"OK";
/// Feedback prefix echoing a (mis)delivery.
pub(crate) const GOT_PREFIX: &[u8] = b"GOT:";

/// Referee-visible state of the channel world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelState {
    /// The current challenge.
    pub challenge: Vec<u8>,
    /// Round at which the current challenge was issued.
    pub challenge_round: u64,
    /// Has the current challenge been delivered intact?
    pub answered: bool,
    /// Total challenges issued.
    pub issued: u64,
    /// Total challenges answered in time.
    pub completed: u64,
    /// Rounds elapsed.
    pub round: u64,
}

/// The channel world strategy.
///
/// Protocol (fixed):
///
/// - world → user, every round: `CHAL:<challenge>` followed by optional
///   feedback about the previous round's delivery: `|OK` (intact) or
///   `|GOT:<bytes>` (an echo of what actually arrived — this echo is what
///   lets a clever user *learn* the server's transformation).
/// - server → world: a delivery attempt; compared byte-for-byte with the
///   current challenge.
/// - every `period` rounds a fresh random challenge is issued.
#[derive(Clone, Debug)]
pub struct ChannelWorld {
    state: ChannelState,
    len: usize,
    period: u64,
    echo: bool,
}

impl ChannelWorld {
    /// A channel world issuing `len`-byte challenges every `period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `period == 0`.
    pub fn new(len: usize, period: u64, rng: &mut GocRng) -> Self {
        Self::build(len, period, rng, true)
    }

    /// A **feedback-poor** channel world: misdeliveries are NOT echoed
    /// (`GOT:` feedback suppressed); the user only ever learns `OK`.
    ///
    /// This is the bandit-information regime: without echoes the
    /// full-information learners of `goc-learning` lose their edge and
    /// nothing beats per-hypothesis elimination (see that crate's `bandit`
    /// module).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `period == 0`.
    pub fn without_echo(len: usize, period: u64, rng: &mut GocRng) -> Self {
        Self::build(len, period, rng, false)
    }

    fn build(len: usize, period: u64, rng: &mut GocRng, echo: bool) -> Self {
        assert!(len > 0, "ChannelWorld requires non-empty challenges");
        assert!(period > 0, "ChannelWorld requires a positive period");
        let challenge = Self::draw(len, rng);
        ChannelWorld {
            state: ChannelState {
                challenge,
                challenge_round: 0,
                answered: false,
                issued: 1,
                completed: 0,
                round: 0,
            },
            len,
            period,
            echo,
        }
    }

    fn draw(len: usize, rng: &mut GocRng) -> Vec<u8> {
        (0..len).map(|_| *rng.choose(ALPHABET)).collect()
    }
}

impl WorldStrategy for ChannelWorld {
    type State = ChannelState;

    fn step(&mut self, ctx: &mut StepCtx<'_>, input: &WorldIn) -> WorldOut {
        // Judge the delivery that arrived this round.
        let delivery = input.from_server.as_bytes();
        let mut feedback: Vec<u8> = Vec::new();
        if !delivery.is_empty() {
            if delivery == self.state.challenge.as_slice() {
                if !self.state.answered {
                    self.state.answered = true;
                    self.state.completed += 1;
                }
                feedback.push(SEP);
                feedback.extend_from_slice(OK_TAG);
            } else if self.echo {
                feedback.push(SEP);
                feedback.extend_from_slice(GOT_PREFIX);
                feedback.extend_from_slice(delivery);
            }
        }

        // Issue a fresh challenge on schedule.
        if (ctx.round + 1).is_multiple_of(self.period) {
            self.state.challenge = Self::draw(self.len, ctx.rng);
            self.state.challenge_round = ctx.round + 1;
            self.state.answered = false;
            self.state.issued += 1;
        }

        let mut msg = CHAL_PREFIX.to_vec();
        msg.extend_from_slice(&self.state.challenge);
        msg.extend_from_slice(&feedback);
        self.state.round = ctx.round + 1;
        WorldOut::to_user(Message::from_bytes(msg))
    }

    fn state(&self) -> ChannelState {
        self.state.clone()
    }
}

/// Parses the world→user broadcast into `(challenge, feedback)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// No delivery was judged this round.
    None,
    /// The challenge arrived intact.
    Ok,
    /// Something else arrived; here is the echo.
    Got(Vec<u8>),
}

/// Splits a world broadcast into the current challenge and the feedback.
/// Returns `None` for non-broadcast messages.
pub fn parse_broadcast(bytes: &[u8]) -> Option<(Vec<u8>, Feedback)> {
    let rest = bytes.strip_prefix(CHAL_PREFIX)?;
    match rest.iter().position(|&b| b == SEP) {
        None => Some((rest.to_vec(), Feedback::None)),
        Some(pos) => {
            let challenge = rest[..pos].to_vec();
            let fb = &rest[pos + 1..];
            if fb == OK_TAG {
                Some((challenge, Feedback::Ok))
            } else if let Some(got) = fb.strip_prefix(GOT_PREFIX) {
                Some((challenge, Feedback::Got(got.to_vec())))
            } else {
                Some((challenge, Feedback::None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(w: &mut ChannelWorld, round: u64, delivery: &[u8]) -> WorldOut {
        let mut rng = GocRng::seed_from_u64(99);
        let mut ctx = StepCtx::new(round, &mut rng);
        w.step(
            &mut ctx,
            &WorldIn {
                from_user: Message::silence(),
                from_server: Message::from_bytes(delivery.to_vec()),
            },
        )
    }

    #[test]
    fn broadcasts_current_challenge() {
        let mut rng = GocRng::seed_from_u64(1);
        let mut w = ChannelWorld::new(4, 50, &mut rng);
        let challenge = w.state().challenge.clone();
        let out = step(&mut w, 0, b"");
        let (c, fb) = parse_broadcast(out.to_user.as_bytes()).unwrap();
        assert_eq!(c, challenge);
        assert_eq!(fb, Feedback::None);
    }

    #[test]
    fn intact_delivery_earns_ok() {
        let mut rng = GocRng::seed_from_u64(2);
        let mut w = ChannelWorld::new(3, 50, &mut rng);
        let challenge = w.state().challenge.clone();
        let out = step(&mut w, 0, &challenge);
        let (_, fb) = parse_broadcast(out.to_user.as_bytes()).unwrap();
        assert_eq!(fb, Feedback::Ok);
        assert!(w.state().answered);
        assert_eq!(w.state().completed, 1);
    }

    #[test]
    fn misdelivery_is_echoed() {
        let mut rng = GocRng::seed_from_u64(3);
        let mut w = ChannelWorld::new(3, 50, &mut rng);
        let out = step(&mut w, 0, b"\xff\x01");
        let (_, fb) = parse_broadcast(out.to_user.as_bytes()).unwrap();
        assert_eq!(fb, Feedback::Got(vec![0xff, 0x01]));
        assert!(!w.state().answered);
    }

    #[test]
    fn challenges_rotate_on_schedule() {
        let mut rng = GocRng::seed_from_u64(4);
        let mut w = ChannelWorld::new(4, 10, &mut rng);
        let first = w.state().challenge.clone();
        for r in 0..10 {
            step(&mut w, r, b"");
        }
        let second = w.state().challenge.clone();
        assert_ne!(first, second);
        assert_eq!(w.state().issued, 2);
        assert_eq!(w.state().challenge_round, 10);
    }

    #[test]
    fn parse_broadcast_rejects_foreign_messages() {
        assert_eq!(parse_broadcast(b"HELLO"), None);
        assert_eq!(parse_broadcast(b""), None);
    }

    #[test]
    fn echoless_world_stays_silent_on_misses() {
        let mut rng = GocRng::seed_from_u64(6);
        let mut w = ChannelWorld::without_echo(3, 50, &mut rng);
        let out = step(&mut w, 0, b"wrong");
        let (_, fb) = parse_broadcast(out.to_user.as_bytes()).unwrap();
        assert_eq!(fb, Feedback::None, "no echo in the bandit regime");
        // OK feedback still flows.
        let challenge = w.state().challenge.clone();
        let out = step(&mut w, 1, &challenge);
        let (_, fb) = parse_broadcast(out.to_user.as_bytes()).unwrap();
        assert_eq!(fb, Feedback::Ok);
    }

    #[test]
    fn challenges_use_restricted_alphabet() {
        let mut rng = GocRng::seed_from_u64(5);
        let w = ChannelWorld::new(16, 10, &mut rng);
        assert!(w.state().challenge.iter().all(|b| ALPHABET.contains(b)));
    }
}
