//! Byte-level encodings shared by server dialects across goals.
//!
//! An [`Encoding`] is an invertible transformation of message payloads — the
//! concrete stand-in for "the server speaks a different language". Server
//! classes are built by crossing a small protocol surface (opcodes,
//! greetings) with an encoding family.

/// An invertible payload encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Bytes pass through unchanged.
    Identity,
    /// Every byte XORed with a mask.
    Xor(u8),
    /// Every byte rotated (Caesar) by a shift.
    Rot(u8),
    /// Payload bytes in reverse order.
    Reverse,
}

impl Encoding {
    /// Encodes a payload into the wire form.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len());
        self.encode_into(payload, &mut out);
        out
    }

    /// [`encode`](Self::encode) appending into a caller-provided buffer —
    /// the allocation-free form for hot loops.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        match *self {
            Encoding::Identity => out.extend_from_slice(payload),
            Encoding::Xor(m) => out.extend(payload.iter().map(|b| b ^ m)),
            Encoding::Rot(s) => out.extend(payload.iter().map(|b| b.wrapping_add(s))),
            Encoding::Reverse => out.extend(payload.iter().rev().copied()),
        }
    }

    /// Decodes wire bytes back into the payload.
    pub fn decode(&self, wire: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(wire.len());
        self.decode_into(wire, &mut out);
        out
    }

    /// [`decode`](Self::decode) appending into a caller-provided buffer —
    /// the allocation-free form for hot loops.
    pub fn decode_into(&self, wire: &[u8], out: &mut Vec<u8>) {
        match *self {
            Encoding::Identity => out.extend_from_slice(wire),
            Encoding::Xor(m) => out.extend(wire.iter().map(|b| b ^ m)),
            Encoding::Rot(s) => out.extend(wire.iter().map(|b| b.wrapping_sub(s))),
            Encoding::Reverse => out.extend(wire.iter().rev().copied()),
        }
    }

    /// A canonical finite family of encodings for building server classes:
    /// identity, reverse, the given XOR masks and the given rotations.
    pub fn family(xor_masks: &[u8], rot_shifts: &[u8]) -> Vec<Encoding> {
        let mut out = vec![Encoding::Identity, Encoding::Reverse];
        out.extend(xor_masks.iter().map(|&m| Encoding::Xor(m)));
        out.extend(rot_shifts.iter().map(|&s| Encoding::Rot(s)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_encodings_roundtrip() {
        let payload = b"payload \x00\x7f\xff bytes";
        for enc in Encoding::family(&[0x01, 0x2a, 0xff], &[1, 128, 255]) {
            assert_eq!(enc.decode(&enc.encode(payload)), payload.to_vec(), "{enc:?}");
        }
    }

    #[test]
    fn family_has_expected_size_and_members() {
        let fam = Encoding::family(&[9], &[4, 5]);
        assert_eq!(fam.len(), 5);
        assert!(fam.contains(&Encoding::Identity));
        assert!(fam.contains(&Encoding::Reverse));
        assert!(fam.contains(&Encoding::Xor(9)));
        assert!(fam.contains(&Encoding::Rot(4)));
    }

    #[test]
    fn distinct_encodings_produce_distinct_wire_forms() {
        let payload = b"abc";
        let fam = Encoding::family(&[1], &[1]);
        let wires: Vec<Vec<u8>> = fam.iter().map(|e| e.encode(payload)).collect();
        for i in 0..wires.len() {
            for j in (i + 1)..wires.len() {
                assert_ne!(wires[i], wires[j], "{:?} vs {:?}", fam[i], fam[j]);
            }
        }
    }

    #[test]
    fn empty_payload_is_fixed_point() {
        for enc in Encoding::family(&[7], &[7]) {
            assert!(enc.encode(b"").is_empty());
            assert!(enc.decode(b"").is_empty());
        }
    }
}
