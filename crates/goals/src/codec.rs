//! Byte-level encodings shared by server dialects across goals.
//!
//! An [`Encoding`] is an invertible transformation of message payloads — the
//! concrete stand-in for "the server speaks a different language". Server
//! classes are built by crossing a small protocol surface (opcodes,
//! greetings) with an encoding family.

/// An invertible payload encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Bytes pass through unchanged.
    Identity,
    /// Every byte XORed with a mask.
    Xor(u8),
    /// Every byte rotated (Caesar) by a shift.
    Rot(u8),
    /// Payload bytes in reverse order.
    Reverse,
}

impl Encoding {
    /// Encodes a payload into the wire form.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        match *self {
            Encoding::Identity => payload.to_vec(),
            Encoding::Xor(m) => payload.iter().map(|b| b ^ m).collect(),
            Encoding::Rot(s) => payload.iter().map(|b| b.wrapping_add(s)).collect(),
            Encoding::Reverse => payload.iter().rev().copied().collect(),
        }
    }

    /// Decodes wire bytes back into the payload.
    pub fn decode(&self, wire: &[u8]) -> Vec<u8> {
        match *self {
            Encoding::Identity => wire.to_vec(),
            Encoding::Xor(m) => wire.iter().map(|b| b ^ m).collect(),
            Encoding::Rot(s) => wire.iter().map(|b| b.wrapping_sub(s)).collect(),
            Encoding::Reverse => wire.iter().rev().copied().collect(),
        }
    }

    /// A canonical finite family of encodings for building server classes:
    /// identity, reverse, the given XOR masks and the given rotations.
    pub fn family(xor_masks: &[u8], rot_shifts: &[u8]) -> Vec<Encoding> {
        let mut out = vec![Encoding::Identity, Encoding::Reverse];
        out.extend(xor_masks.iter().map(|&m| Encoding::Xor(m)));
        out.extend(rot_shifts.iter().map(|&s| Encoding::Rot(s)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_encodings_roundtrip() {
        let payload = b"payload \x00\x7f\xff bytes";
        for enc in Encoding::family(&[0x01, 0x2a, 0xff], &[1, 128, 255]) {
            assert_eq!(enc.decode(&enc.encode(payload)), payload.to_vec(), "{enc:?}");
        }
    }

    #[test]
    fn family_has_expected_size_and_members() {
        let fam = Encoding::family(&[9], &[4, 5]);
        assert_eq!(fam.len(), 5);
        assert!(fam.contains(&Encoding::Identity));
        assert!(fam.contains(&Encoding::Reverse));
        assert!(fam.contains(&Encoding::Xor(9)));
        assert!(fam.contains(&Encoding::Rot(4)));
    }

    #[test]
    fn distinct_encodings_produce_distinct_wire_forms() {
        let payload = b"abc";
        let fam = Encoding::family(&[1], &[1]);
        let wires: Vec<Vec<u8>> = fam.iter().map(|e| e.encode(payload)).collect();
        for i in 0..wires.len() {
            for j in (i + 1)..wires.len() {
                assert_ne!(wires[i], wires[j], "{:?} vs {:?}", fam[i], fam[j]);
            }
        }
    }

    #[test]
    fn empty_payload_is_fixed_point() {
        for enc in Encoding::family(&[7], &[7]) {
            assert!(enc.encode(b"").is_empty());
            assert!(enc.decode(b"").is_empty());
        }
    }
}
