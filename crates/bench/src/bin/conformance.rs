//! `goc-conformance` — runs the metamorphic conformance sweep and prints a
//! deterministic report.
//!
//! Run with: `cargo run --release -p goc-bench --bin goc-conformance [-- FLAGS]`
//!
//! Flags:
//! - `--seed N`: root seed for the sweep (decimal or 0x-hex; default 1).
//! - `--quick`: reduced case count for CI smoke.
//!
//! Exit codes: 0 conformant, 2 safety violations, 3 viability failures
//! (safety wins when both occur — a false positive is the graver bug).

use goc_testkit::conformance::{sweep, SweepConfig};

fn parse_seed(arg: &str) -> Option<u64> {
    if let Some(hex) = arg.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        arg.parse().ok()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut seed = 1u64;
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        match args.get(i + 1).and_then(|a| parse_seed(a)) {
            Some(s) => seed = s,
            None => {
                eprintln!("goc-conformance: --seed requires a decimal or 0x-hex u64");
                std::process::exit(1);
            }
        }
    }
    let cfg = if quick { SweepConfig::quick(seed) } else { SweepConfig::new(seed) };
    let report = sweep(&cfg);
    println!("{}", report.render());
    if !report.safety_violations.is_empty() {
        std::process::exit(2);
    }
    if !report.viability_failures.is_empty() {
        std::process::exit(3);
    }
}
