//! `goc-trace` — renders a `GOC_TRACE` JSONL file as a flame-style tree.
//!
//! Usage: `goc-trace <trace.jsonl> [--summary]`
//!
//! Spans nest by their enter/exit structure, per-task streams aggregate
//! by span path, and candidate lifecycle events attach as leaves under
//! the span they occurred in. The cost column sums span **exit values**
//! (logical rounds), so two traces of the same workload render
//! identically regardless of machine or `GOC_THREADS` — byte-equality of
//! the underlying files is ci.sh-gated.
//!
//! `--summary` prints the flat aggregate table (the same section
//! `goc-report --trace-summary` embeds) instead of the tree.

use goc_bench::tracefile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let summary_mode = args.iter().any(|a| a == "--summary");
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: goc-trace <trace.jsonl> [--summary]");
            eprintln!("record one with: GOC_TRACE=trace.jsonl cargo run -p goc-bench --bin goc-report -- --quick");
            std::process::exit(1);
        }
    };
    let (lines, stats) = match tracefile::load(&path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("goc-trace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if summary_mode {
        let summary = tracefile::summarize(&lines);
        print!("{}", tracefile::render_summary(&path, &summary, stats));
        return;
    }
    let summary = tracefile::summarize(&lines);
    let mut skipped_note = String::new();
    if stats.skipped_lines > 0 {
        skipped_note.push_str(&format!(", {} unparsed lines", stats.skipped_lines));
    }
    if stats.skipped_pairs > 0 {
        skipped_note.push_str(&format!(", {} malformed bucket pairs", stats.skipped_pairs));
    }
    println!(
        "# goc-trace {path} — {} records, {} tasks{skipped_note}",
        summary.records, summary.tasks,
    );
    print!("{}", tracefile::render_tree(&lines));
}
