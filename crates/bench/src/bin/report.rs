//! `goc-report` — regenerates every experiment series in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p goc-bench --bin goc-report`

use goc_bench::experiments as exp;

fn main() {
    println!("# goc experiment report (deterministic; fixed seeds)\n");

    // --- E1 ---------------------------------------------------------------
    println!("## E1 — Theorem 1, compact case (printing, 12-dialect class)");
    println!("{:>8} {:>10} {:>14}", "dialect", "settled", "settle round");
    let n1 = exp::e1_dialects().len();
    for idx in 0..n1 {
        let (ok, settle) = exp::e1_settle(idx, 60_000);
        println!("{idx:>8} {:>10} {settle:>14}", ok);
        assert!(ok);
    }

    // --- E2 ---------------------------------------------------------------
    println!("\n## E2 — Theorem 1, finite case (delegation, 8-protocol class)");
    println!("{:>9} {:>16} {:>18}", "protocol", "rounds (Levin)", "rounds (RR-double)");
    for idx in 0..exp::e2_protocols().len() {
        let classic = exp::e2_rounds(idx, true);
        let rr = exp::e2_rounds(idx, false);
        println!("{idx:>9} {classic:>16} {rr:>18}");
    }

    // --- E3 ---------------------------------------------------------------
    println!("\n## E3 — necessity of overhead (password-locked servers)");
    println!("{:>4} {:>10} {:>12} {:>8}", "k", "informed", "universal", "ratio");
    for k in 2..=10u32 {
        let inf = exp::e3_rounds(k, true);
        let uni = exp::e3_rounds(k, false);
        println!("{k:>4} {inf:>10} {uni:>12} {:>7.0}x", uni as f64 / inf as f64);
    }

    // --- E4 ---------------------------------------------------------------
    println!("\n## E4 — enumeration overhead vs strategy index");
    println!("compact (triangular re-enumeration, class of 24):");
    println!("{:>7} {:>14}", "index", "settle round");
    for idx in [1usize, 4, 8, 12, 16, 20] {
        println!("{idx:>7} {:>14}", exp::e4_compact_settle(idx, 24));
    }
    println!("finite (classic Levin, class of 16):");
    println!("{:>7} {:>14}", "index", "rounds");
    for shift in [0u8, 2, 4, 6, 8, 10, 12] {
        println!("{shift:>7} {:>14}", exp::e4_levin_rounds(shift));
    }

    // --- E5 ---------------------------------------------------------------
    println!("\n## E5 — sensing ablation (unsafe sensing, silent server)");
    let (halted, achieved) = exp::e5_unsafe_sensing_outcome();
    println!("halted = {halted}, achieved = {achieved}  (false halt: safety is necessary)");
    assert!(halted && !achieved);

    // --- E6 ---------------------------------------------------------------
    println!("\n## E6 — universality tracks helpfulness exactly");
    println!("{:>18} {:>9} {:>9} {:>11}", "server", "helpful", "achieved", "false halt");
    for (name, expected, achieved, false_halt) in exp::e6_boundary() {
        println!("{name:>18} {expected:>9} {achieved:>9} {false_halt:>11}");
        assert_eq!(expected, achieved);
        assert!(!false_halt);
    }

    // --- E10 --------------------------------------------------------------
    println!("\n## E10 — forgivingness necessity (fragile goal, shift-3 server)");
    let (uni, inf) = exp::e10_fragile();
    println!("informed user achieved = {inf}; universal user achieved = {uni}");
    assert!(inf && !uni);

    // --- E7 ---------------------------------------------------------------
    println!("\n## E7 — multi-session mistakes: enumeration (~N−1) vs halving (~log2 N)");
    println!("{:>6} {:>13} {:>9} {:>10}", "N", "enumeration", "halving", "log2 N");
    for exp2 in 1..=9u32 {
        let n = 1usize << exp2;
        let (e, h) = exp::e7_mistakes(n);
        println!("{n:>6} {e:>13} {h:>9} {exp2:>10}");
    }
    println!("threshold class (structured overlap — halving's log2 N curve):");
    println!("{:>6} {:>13} {:>9} {:>10}", "N", "enumeration", "halving", "log2 N");
    for exp2 in [2u32, 4, 6, 8] {
        let n = 1usize << exp2;
        let (e, h) = exp::e7_threshold_mistakes(n);
        println!("{n:>6} {e:>13} {h:>9} {exp2:>10}");
    }
    println!("bridged into the simulator (echo feedback), N = 16:");
    let (be, bh) = exp::e7_bridge_mistakes(16);
    println!("  enumeration = {be}, halving = {bh}");

    // --- E8 ---------------------------------------------------------------
    println!("\n## E8 — ablations");
    let (tri, lin) = exp::e8_schedule_ablation();
    println!("schedule under impatient sensing: triangular bad-prefixes = {tri}, linear = {lin}");
    println!("patience sweep (deadline timeout → settle round; None = failed):");
    for timeout in [2u64, 4, 8, 16, 32, 64, 128] {
        println!("  timeout {timeout:>4}: {:?}", exp::e8_patience_settle(timeout));
    }

    // --- E11 --------------------------------------------------------------
    println!("\n## E11 — quality of achievement (transmission, deep transform #5 of 7)");
    println!("{:>9} {:>10} {:>9} {:>11}", "horizon", "informed", "learner", "universal");
    for horizon in [1_000u64, 2_000, 4_000, 8_000] {
        let (i, l, u) = exp::e11_transmission_quality(horizon);
        println!("{horizon:>9} {i:>10.3} {l:>9.3} {u:>11.3}");
    }

    // --- E9 ---------------------------------------------------------------
    println!("\n## E9 — substrate throughput (see criterion benches for timings)");
    println!("exec rounds executed:      {}", exp::e9_exec_rounds(100_000));
    println!("vm instructions retired:   {}", exp::e9_vm_instructions(10_000));

    println!("\ndone.");
}
