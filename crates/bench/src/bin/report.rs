//! `goc-report` — regenerates every experiment series in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p goc-bench --bin goc-report`
//!
//! Flags:
//! - `--quick`: reduced series for CI smoke — same invariants asserted,
//!   smaller sweeps.
//! - `--bench-summary [PATH]`: instead of regenerating the series, print a
//!   table from the JSON lines the in-tree bench harness appended to `PATH`
//!   (default `target/goc-bench.jsonl`).
//! - `--trace-summary [PATH]`: print span/event/metric aggregates from a
//!   `GOC_TRACE` JSONL file (default `target/goc-trace.jsonl`); record one
//!   with `GOC_TRACE=target/goc-trace.jsonl goc-report --quick`.
//! - `--serve-summary PATH`: render the latency/throughput record a
//!   `goc-load --json PATH` run wrote — session/failure counts plus
//!   p50/p99 `Drive` round-trip latency (the CI serve gate greps the
//!   `failures` line).
//! - `--compare OLD.jsonl NEW.jsonl`: per-benchmark median and fastest-sample
//!   deltas between two JSONL files (e.g. a committed snapshot vs a fresh
//!   run); lines whose fastest sample is more than 10% slower are marked
//!   `REGRESSION` (the min resists shared-host load spikes that swing
//!   quick-mode medians).

use goc_bench::experiments as exp;
use goc_core::buf::CopyMode;
use goc_core::prelude::ResumePolicy;
use goc_testkit::bench::{default_json_path, fmt_bytes, fmt_ns, BenchRecord};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--bench-summary") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| default_json_path().to_string_lossy().into_owned());
        bench_summary(&path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(old), Some(new)) => {
                compare(old, new);
                return;
            }
            _ => {
                eprintln!("goc-report: --compare needs two paths: OLD.jsonl NEW.jsonl");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--serve-summary") {
        match args.get(i + 1) {
            Some(path) => {
                serve_summary(path);
                return;
            }
            None => {
                eprintln!("goc-report: --serve-summary needs a goc-load JSONL path");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--trace-summary") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "target/goc-trace.jsonl".to_string());
        trace_summary(&path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    report(quick);
    // With GOC_TRACE set, close the trace with the deterministic metric
    // totals (process-scoped metrics are excluded by design so the file
    // stays byte-identical across GOC_THREADS).
    goc_core::obs::flush_metrics();
}

/// Renders the latency/throughput record `goc-load --json` wrote: one
/// `serve_load` line per run, the failure count on its own greppable line,
/// and the p50/p99 `Drive` round-trip latencies.
fn serve_summary(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "goc-report: cannot read {path}: {e}\n\
                 record a run first: goc-load --json {path} ..."
            );
            std::process::exit(1);
        }
    };
    // The record is flat single-line JSON from our own generator; a tiny
    // field scanner keeps this binary free of a JSON dependency.
    let field = |line: &str, key: &str| -> Option<String> {
        let needle = format!("\"{key}\":");
        let at = line.find(&needle)? + needle.len();
        let rest = &line[at..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].to_string())
    };
    let mut seen = 0u32;
    println!("serve summary ({path})");
    for line in text.lines().filter(|l| l.contains("\"id\":\"serve_load\"")) {
        seen += 1;
        let get = |key: &str| field(line, key).unwrap_or_else(|| "?".to_string());
        println!(
            "  serve_load: mode {}, scenario {}, {} sessions over {} conns, \
             quantum {}, horizon {}",
            get("mode"),
            get("scenario"),
            get("sessions"),
            get("conns"),
            get("quantum"),
            get("horizon"),
        );
        println!("  failures {}", get("failures"));
        println!(
            "  latency: p50 {} us, p99 {} us over {} drives in {} ms",
            get("p50_us"),
            get("p99_us"),
            get("drives"),
            get("wall_ms"),
        );
    }
    if seen == 0 {
        eprintln!("goc-report: no serve_load records in {path}");
        std::process::exit(1);
    }
}

/// Prints aggregates of a `GOC_TRACE` JSONL file (spans, events, exported
/// metrics) via the shared reader in [`goc_bench::tracefile`].
fn trace_summary(path: &str) {
    let (lines, stats) = match goc_bench::tracefile::load(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "goc-report: cannot read {path}: {e}\n\
                 record a trace first: GOC_TRACE={path} goc-report --quick"
            );
            std::process::exit(1);
        }
    };
    let summary = goc_bench::tracefile::summarize(&lines);
    print!("{}", goc_bench::tracefile::render_summary(path, &summary, stats));
}

/// Loads the JSONL records in `path`, keeping the *last* record per
/// `(group, id)` — appended re-runs supersede earlier ones.
fn load_latest(path: &str) -> Vec<BenchRecord> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("goc-report: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut latest: Vec<BenchRecord> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(r) = BenchRecord::parse_json_line(line) {
            match latest.iter_mut().find(|p| p.group == r.group && p.id == r.id) {
                Some(slot) => *slot = r,
                None => latest.push(r),
            }
        }
    }
    latest
}

/// Prints per-benchmark deltas between two JSONL files: `old` is the
/// committed snapshot, `new` the fresh run. A benchmark whose
/// **fastest sample** is more than 10% slower than its snapshot's fastest
/// sample is marked `REGRESSION` (CI greps for the word); benchmarks present
/// in only one file are listed but not compared.
///
/// The flag keys off the min over samples, not the median: interference on
/// a shared or throttled CI host only ever *adds* time, so the fastest
/// sample tracks the code's true cost while a 3-sample quick-mode median
/// swings ±30% with machine load. Median deltas stay in the table for
/// context; records missing a minimum (older snapshots) fall back to the
/// median delta.
fn compare(old_path: &str, new_path: &str) {
    let old = load_latest(old_path);
    let new = load_latest(new_path);
    println!("# bench compare: {old_path} (old) -> {new_path} (new)\n");
    println!(
        "{:<44} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "old median", "new median", "Δmedian", "Δmin"
    );
    let mut regressions = 0usize;
    for n in &new {
        let id = format!("{}/{}", n.group, n.id);
        match old.iter().find(|o| o.group == n.group && o.id == n.id) {
            Some(o) if o.median_ns > 0 => {
                let dmed = (n.median_ns as f64 - o.median_ns as f64) / o.median_ns as f64 * 100.0;
                let dmin = (o.min_ns > 0 && n.min_ns > 0)
                    .then(|| (n.min_ns as f64 - o.min_ns as f64) / o.min_ns as f64 * 100.0);
                let mark = if dmin.unwrap_or(dmed) > 10.0 {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                let dmin_col = dmin.map(|d| format!("{d:>+8.1}%")).unwrap_or_default();
                println!(
                    "{id:<44} {:>12} {:>12} {:>+8.1}% {dmin_col:>9}{mark}",
                    fmt_ns(o.median_ns),
                    fmt_ns(n.median_ns),
                    dmed
                );
            }
            _ => println!("{id:<44} {:>12} {:>12}", "(absent)", fmt_ns(n.median_ns)),
        }
    }
    for o in &old {
        if !new.iter().any(|n| n.group == o.group && n.id == o.id) {
            println!("{:<44} {:>12} {:>12}", format!("{}/{}", o.group, o.id), fmt_ns(o.median_ns), "(absent)");
        }
    }
    println!(
        "\n{} benchmarks compared, {regressions} regression(s) over 10% (fastest sample)",
        new.len()
    );
}

/// Prints a table of the bench results recorded in `path` (JSON lines
/// emitted by `goc_testkit::bench` during `cargo bench -p goc-bench`).
fn bench_summary(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "goc-report: cannot read {path}: {e}\n\
                 run `cargo bench -p goc-bench` first (it appends JSON lines there)"
            );
            std::process::exit(1);
        }
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match BenchRecord::parse_json_line(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    println!("# bench summary from {path} ({} records)\n", records.len());
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>14} {:>8} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "benchmark",
        "median",
        "p95",
        "min",
        "throughput",
        "threads",
        "cache",
        "allocs",
        "peak",
        "dispatch",
        "mispred"
    );
    let mut group = String::new();
    for r in &records {
        if r.group != group {
            group = r.group.clone();
            println!("-- {group}");
        }
        let throughput = match r.elems {
            // elems per second at the median, from ns/iter and elems/iter
            Some(e) if r.median_ns > 0 => {
                format!("{:.1} Melem/s", e as f64 / r.median_ns as f64 * 1e3)
            }
            _ => String::new(),
        };
        let threads = r.threads.map(|t| t.to_string()).unwrap_or_default();
        let cache = r
            .cache_hit_rate()
            .map(|rate| match rate * 100.0 {
                // A tiny-but-nonzero rate must not round down to "0% hit".
                pct if pct > 0.0 && pct < 1.0 => "<1% hit".to_string(),
                pct => format!("{pct:.0}% hit"),
            })
            .unwrap_or_default();
        let allocs = r.allocs.map(|a| format!("{a}/iter")).unwrap_or_default();
        let peak = r.peak_bytes.map(fmt_bytes).unwrap_or_default();
        let dispatch = r.dispatch.clone().unwrap_or_default();
        let mispred = r.mispredicts.map(|m| m.to_string()).unwrap_or_default();
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>14} {:>8} {:>10} {:>12} {:>12} {:>9} {:>8}",
            format!("{}/{}", r.group, r.id),
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns),
            fmt_ns(r.min_ns),
            throughput,
            threads,
            cache,
            allocs,
            peak,
            dispatch,
            mispred
        );
    }
    speedup_section(&records);
    e13_improvement_section(&records);
    e14_improvement_section(&records);
    e15_improvement_section(&records);
    e16_improvement_section(&records);
    if skipped > 0 {
        println!("\n({skipped} malformed lines skipped)");
    }
}

/// Prints the E13 headline number: wall-clock improvement of the zero-copy
/// engine (pooled buffers + `Resume`) over an honest reproduction of its
/// predecessor (eager deep copies + `Replay`) on the 12-dialect settle
/// workload, single-threaded. CI gates this at >= 2x.
fn e13_improvement_section(records: &[BenchRecord]) {
    // When a variant was benched more than once (appended runs), the latest
    // record wins.
    let median = |id: &str| records.iter().rev().find(|r| r.id == id).map(|r| r.median_ns);
    let off = median("settle12_replay_eager@t1");
    let on = median("settle12_resume_pooled@t1");
    if let (Some(off), Some(on)) = (off, on) {
        if on > 0 {
            println!("\n## E13 zero-copy settle improvement (t1, eager-replay vs pooled-resume)");
            println!(
                "off {} -> on {}  ({:.2}x improvement)",
                fmt_ns(off),
                fmt_ns(on),
                off as f64 / on as f64
            );
        }
    }
}

/// Prints the E14 headline number: wall-clock improvement of the batch
/// (predecoded) VM interpreter over the exact scalar path on the
/// finite-Levin settle workload, single-threaded. CI gates this at >= 2x.
/// The "batch improvement" wording is deliberate — it keeps this line out
/// of the E13 gate's `x improvement` grep.
fn e14_improvement_section(records: &[BenchRecord]) {
    let median = |id: &str| records.iter().rev().find(|r| r.id == id).map(|r| r.median_ns);
    let scalar = median("levin_settle_scalar@t1");
    let batch = median("levin_settle_batch@t1");
    if let (Some(scalar), Some(batch)) = (scalar, batch) {
        if batch > 0 {
            println!("\n## E14 batch interpreter settle improvement (t1, scalar vs batch VM)");
            println!(
                "scalar {} -> batch {}  ({:.2}x batch improvement)",
                fmt_ns(scalar),
                fmt_ns(batch),
                scalar as f64 / batch as f64
            );
        }
    }
}

/// Prints the E15 headline number: wall-clock improvement of the pipelined
/// background prewarm (pool workers speculatively executing the next
/// lookahead window, with fixed-point fill) over inline candidate
/// construction on the burner-heavy finite-Levin settle workload. CI gates
/// this at >= 1.5x. The "prewarm improvement" wording keeps this line out
/// of the E13 and E14 gates' greps.
fn e15_improvement_section(records: &[BenchRecord]) {
    let median = |id: &str| records.iter().rev().find(|r| r.id == id).map(|r| r.median_ns);
    let inline = median("levin_settle_inline@t4");
    let warmed = median("levin_settle_prewarm@t4");
    if let (Some(inline), Some(warmed)) = (inline, warmed) {
        if warmed > 0 {
            println!("\n## E15 pipelined prewarm settle improvement (t4, inline vs background)");
            println!(
                "inline {} -> prewarm {}  ({:.2}x prewarm improvement)",
                fmt_ns(inline),
                fmt_ns(warmed),
                inline as f64 / warmed as f64
            );
        }
    }
}

/// Prints the E16 headline numbers: wall-clock improvement of the
/// predecoded dispatch-table scalar core over the legacy `match` loop, on
/// the raw instruction micro-bench (CI gates this at >= 1.3x) and on the
/// E14-class settle workload with batching pinned off. The "dispatch
/// improvement" wording keeps the gated line out of the E13/E14/E15 greps,
/// and the settle line's "settle win" wording keeps it out of the E16 grep.
fn e16_improvement_section(records: &[BenchRecord]) {
    let median = |id: &str| records.iter().rev().find(|r| r.id == id).map(|r| r.median_ns);
    let via_match = median("vm_instructions_10k_rounds_match");
    let via_table = median("vm_instructions_10k_rounds_table");
    if let (Some(m), Some(t)) = (via_match, via_table) {
        if t > 0 {
            println!("\n## E16 dispatch-table core improvement (match loop vs predecoded table)");
            println!(
                "match {} -> table {}  ({:.2}x dispatch improvement)",
                fmt_ns(m),
                fmt_ns(t),
                m as f64 / t as f64
            );
        }
    }
    let off = median("levin_settle_dispatch_off@t1");
    let on = median("levin_settle_dispatch_on@t1");
    if let (Some(off), Some(on)) = (off, on) {
        if on > 0 {
            println!(
                "settle (batch off): match {} -> table {}  ({:.2}x settle win)",
                fmt_ns(off),
                fmt_ns(on),
                off as f64 / on as f64
            );
        }
    }
}

/// Prints the sequential-vs-parallel speedups: benchmarks whose ids differ
/// only in an `@tN` suffix are paired, and each N > 1 variant is compared
/// against its `@t1` baseline by median time. When the same variant was
/// benched more than once (appended runs), the latest record wins.
fn speedup_section(records: &[BenchRecord]) {
    use std::collections::BTreeMap;
    let mut by_stem: BTreeMap<(String, String), BTreeMap<u64, u64>> = BTreeMap::new();
    for r in records {
        let Some((stem, suffix)) = r.id.rsplit_once("@t") else { continue };
        let Ok(threads) = suffix.parse::<u64>() else { continue };
        by_stem
            .entry((r.group.clone(), stem.to_string()))
            .or_default()
            .insert(threads, r.median_ns);
    }
    let mut lines = Vec::new();
    for ((group, stem), variants) in &by_stem {
        let Some(&base) = variants.get(&1) else { continue };
        for (&threads, &median) in variants.iter().filter(|&(&t, _)| t > 1) {
            if median > 0 {
                lines.push(format!(
                    "{group}/{stem}: t1 {} -> t{threads} {}  ({:.2}x speedup)",
                    fmt_ns(base),
                    fmt_ns(median),
                    base as f64 / median as f64
                ));
            }
        }
    }
    if !lines.is_empty() {
        println!("\n## parallel speedup (median, vs @t1 baseline)");
        for line in lines {
            println!("{line}");
        }
    }
}

fn report(quick: bool) {
    if quick {
        println!("# goc experiment report — QUICK smoke (deterministic; fixed seeds)\n");
    } else {
        println!("# goc experiment report (deterministic; fixed seeds)\n");
    }

    // --- E1 ---------------------------------------------------------------
    println!("## E1 — Theorem 1, compact case (printing, 12-dialect class)");
    println!("{:>8} {:>10} {:>14}", "dialect", "settled", "settle round");
    let n1 = exp::e1_dialects().len();
    let n1 = if quick { n1.min(2) } else { n1 };
    for idx in 0..n1 {
        let (ok, settle) = exp::e1_settle(idx, 60_000);
        println!("{idx:>8} {:>10} {settle:>14}", ok);
        assert!(ok);
    }

    // --- E2 ---------------------------------------------------------------
    println!("\n## E2 — Theorem 1, finite case (delegation, 8-protocol class)");
    println!("{:>9} {:>16} {:>18}", "protocol", "rounds (Levin)", "rounds (RR-double)");
    let n2 = exp::e2_protocols().len();
    let n2 = if quick { n2.min(2) } else { n2 };
    for idx in 0..n2 {
        let classic = exp::e2_rounds(idx, true);
        let rr = exp::e2_rounds(idx, false);
        println!("{idx:>9} {classic:>16} {rr:>18}");
    }

    // --- E3 ---------------------------------------------------------------
    println!("\n## E3 — necessity of overhead (password-locked servers)");
    println!("{:>4} {:>10} {:>12} {:>8}", "k", "informed", "universal", "ratio");
    for k in 2..=(if quick { 5u32 } else { 10u32 }) {
        let inf = exp::e3_rounds(k, true);
        let uni = exp::e3_rounds(k, false);
        println!("{k:>4} {inf:>10} {uni:>12} {:>7.0}x", uni as f64 / inf as f64);
    }

    // --- E4 ---------------------------------------------------------------
    println!("\n## E4 — enumeration overhead vs strategy index");
    println!("compact (triangular re-enumeration, class of 24):");
    println!("{:>7} {:>14}", "index", "settle round");
    let compact_indices: &[usize] = if quick { &[1, 8] } else { &[1, 4, 8, 12, 16, 20] };
    for &idx in compact_indices {
        println!("{idx:>7} {:>14}", exp::e4_compact_settle(idx, 24));
    }
    println!("finite (classic Levin, class of 16):");
    println!("{:>7} {:>14}", "index", "rounds");
    let shifts: &[u8] = if quick { &[0, 4, 8] } else { &[0, 2, 4, 6, 8, 10, 12] };
    for &shift in shifts {
        println!("{shift:>7} {:>14}", exp::e4_levin_rounds(shift));
    }

    // --- E5 ---------------------------------------------------------------
    println!("\n## E5 — sensing ablation (unsafe sensing, silent server)");
    let (halted, achieved) = exp::e5_unsafe_sensing_outcome();
    println!("halted = {halted}, achieved = {achieved}  (false halt: safety is necessary)");
    assert!(halted && !achieved);

    // --- E6 ---------------------------------------------------------------
    println!("\n## E6 — universality tracks helpfulness exactly");
    println!("{:>18} {:>9} {:>9} {:>11}", "server", "helpful", "achieved", "false halt");
    for (name, expected, achieved, false_halt) in exp::e6_boundary() {
        println!("{name:>18} {expected:>9} {achieved:>9} {false_halt:>11}");
        assert_eq!(expected, achieved);
        assert!(!false_halt);
    }

    // --- E10 --------------------------------------------------------------
    println!("\n## E10 — forgivingness necessity (fragile goal, shift-3 server)");
    let (uni, inf) = exp::e10_fragile();
    println!("informed user achieved = {inf}; universal user achieved = {uni}");
    assert!(inf && !uni);

    // --- E7 ---------------------------------------------------------------
    println!("\n## E7 — multi-session mistakes: enumeration (~N−1) vs halving (~log2 N)");
    println!("{:>6} {:>13} {:>9} {:>10}", "N", "enumeration", "halving", "log2 N");
    for exp2 in 1..=(if quick { 5u32 } else { 9u32 }) {
        let n = 1usize << exp2;
        let (e, h) = exp::e7_mistakes(n);
        println!("{n:>6} {e:>13} {h:>9} {exp2:>10}");
    }
    println!("threshold class (structured overlap — halving's log2 N curve):");
    println!("{:>6} {:>13} {:>9} {:>10}", "N", "enumeration", "halving", "log2 N");
    let threshold_exps: &[u32] = if quick { &[2, 4] } else { &[2, 4, 6, 8] };
    for &exp2 in threshold_exps {
        let n = 1usize << exp2;
        let (e, h) = exp::e7_threshold_mistakes(n);
        println!("{n:>6} {e:>13} {h:>9} {exp2:>10}");
    }
    let bridge_n = if quick { 8 } else { 16 };
    println!("bridged into the simulator (echo feedback), N = {bridge_n}:");
    let (be, bh) = exp::e7_bridge_mistakes(bridge_n);
    println!("  enumeration = {be}, halving = {bh}");

    // --- E8 ---------------------------------------------------------------
    println!("\n## E8 — ablations");
    let (tri, lin) = exp::e8_schedule_ablation();
    println!("schedule under impatient sensing: triangular bad-prefixes = {tri}, linear = {lin}");
    println!("patience sweep (deadline timeout → settle round; None = failed):");
    let timeouts: &[u64] = if quick { &[2, 8, 32] } else { &[2, 4, 8, 16, 32, 64, 128] };
    for &timeout in timeouts {
        println!("  timeout {timeout:>4}: {:?}", exp::e8_patience_settle(timeout));
    }

    // --- E11 --------------------------------------------------------------
    println!("\n## E11 — quality of achievement (transmission, deep transform #5 of 7)");
    println!("{:>9} {:>10} {:>9} {:>11}", "horizon", "informed", "learner", "universal");
    let horizons: &[u64] = if quick { &[1_000] } else { &[1_000, 2_000, 4_000, 8_000] };
    for &horizon in horizons {
        let (i, l, u) = exp::e11_transmission_quality(horizon);
        println!("{horizon:>9} {i:>10.3} {l:>9.3} {u:>11.3}");
    }

    // --- E12 --------------------------------------------------------------
    println!("\n## E12 — noise sweep (shift-3 relay, symmetric i.i.d. loss on the link)");
    println!("{:>7} {:>10} {:>10}", "drop %", "achieved", "rounds");
    let noise_horizon = if quick { 100_000 } else { 400_000 };
    for pct in exp::e12_noise_levels(quick) {
        let (ok, rounds) = exp::e12_noise_outcome(pct, noise_horizon);
        println!("{pct:>7} {ok:>10} {rounds:>10}");
        // Loss only slows conquest: the helpful server stays helpful, the
        // ACK travels the untouchable world link, so every level conquers.
        assert!(ok, "drop {pct}% must still conquer within {noise_horizon}");
    }
    println!("single outage at round 0 (finite schedule — recovery cost):");
    println!("{:>10} {:>10} {:>10}", "burst len", "achieved", "rounds");
    let bursts: &[u64] = if quick { &[0, 256] } else { &[0, 64, 256, 1_024] };
    for &len in bursts {
        let (ok, rounds) = exp::e12_burst_outcome(len, noise_horizon);
        println!("{len:>10} {ok:>10} {rounds:>10}");
        assert!(ok && rounds > len, "burst {len}: {ok}, {rounds}");
    }

    // --- E9 ---------------------------------------------------------------
    println!("\n## E9 — substrate throughput (see `cargo bench -p goc-bench` for timings)");
    let (exec_rounds, vm_rounds) = if quick { (10_000, 1_000) } else { (100_000, 10_000) };
    println!("exec rounds executed:      {}", exp::e9_exec_rounds(exec_rounds));
    println!("vm instructions retired:   {}", exp::e9_vm_instructions(vm_rounds));

    // --- E13 --------------------------------------------------------------
    println!("\n## E13 — zero-copy round loop (revisit-policy parity on the 12-dialect class)");
    let h13 = if quick { 2_400 } else { 8_000 };
    let replay = exp::e13_settle12(ResumePolicy::Replay, CopyMode::Eager, h13);
    let resume = exp::e13_settle12(ResumePolicy::Resume, CopyMode::Pooled, h13);
    assert_eq!(replay, resume, "eager-replay and pooled-resume must settle identically");
    println!("{:>8} {:>14}", "dialect", "settle round");
    for (idx, settle) in resume.iter().enumerate() {
        println!("{idx:>8} {settle:>14}");
    }
    let stats = goc_core::buf::with_pool(true, || {
        let mut steady = exp::SteadyLoop::new();
        goc_core::buf::reset_pool_stats();
        let _ = steady.batch();
        goc_core::buf::pool_stats()
    });
    println!(
        "steady batch ({} rounds): pool hits = {}, misses = {}, recycled = {}",
        exp::E13_STEADY_BATCH,
        stats.hits,
        stats.misses,
        stats.recycled
    );
    assert_eq!(stats.misses, 0, "a warm steady batch must be served entirely from the pool");

    // --- E14 --------------------------------------------------------------
    println!("\n## E14 — batch VM interpreter (scalar-vs-batch settle parity)");
    let scalar_settle = exp::e14_levin_vm_settle(false);
    let batch_settle = exp::e14_levin_vm_settle(true);
    assert_eq!(
        scalar_settle, batch_settle,
        "scalar and batch interpreters must settle identically"
    );
    println!("finite-Levin settle round (both interpreters): {batch_settle}");

    // --- E15 --------------------------------------------------------------
    println!("\n## E15 — pipelined background prewarm (inline-vs-pipelined settle parity)");
    let inline_settle = goc_core::par::with_thread_count(4, || exp::e15_levin_prewarm_settle(false));
    let prewarm_settle = goc_core::par::with_thread_count(4, || exp::e15_levin_prewarm_settle(true));
    assert_eq!(
        inline_settle, prewarm_settle,
        "inline and pipelined prewarm must settle identically"
    );
    println!("finite-Levin settle round (both construction paths): {prewarm_settle}");

    // --- E16 --------------------------------------------------------------
    println!("\n## E16 — dispatch-table scalar core (match-vs-table settle parity)");
    let match_settle = exp::e16_levin_dispatch_settle(false);
    let table_settle = exp::e16_levin_dispatch_settle(true);
    assert_eq!(
        match_settle, table_settle,
        "the match loop and the dispatch table must settle identically"
    );
    println!("finite-Levin settle round (both scalar cores): {table_settle}");

    println!("\ndone.");
}
