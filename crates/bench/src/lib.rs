//! # goc-bench — the experiment harness
//!
//! One function per experiment series (EXPERIMENTS.md / DESIGN.md §5). The
//! `goc-testkit` timing benches in `benches/` time these functions; the
//! `goc-report` binary prints the series themselves (rounds, mistakes,
//! ratios — the quantities that play the role of the paper's missing
//! tables/figures).
//!
//! Everything is deterministic: fixed seeds, fixed class orders, so the
//! numbers in EXPERIMENTS.md are exactly reproducible.

pub mod experiments;
pub mod tracefile;
