//! Deterministic experiment runners shared by the `goc-testkit` timing
//! benches and the `goc-report` table generator.

use goc_core::buf::CopyMode;
use goc_core::channel::Noisy;
use goc_core::enumeration::SliceEnumerator;
use goc_core::harness::{compact_success, finite_success, SuccessReport};
use goc_core::prelude::*;
use goc_core::sensing::Deadline;
use goc_core::toy;
use goc_core::universal::Schedule;
use goc_core::wrappers::PasswordLocked;
use goc_goals::codec::Encoding;
use goc_goals::computation as comp;
use goc_goals::printing as print;
use goc_goals::transmission as trans;
use goc_learning as learn;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// E1 — Theorem 1, compact case (printing goal, dialect class)
// ---------------------------------------------------------------------------

/// The E1 dialect class (12 dialects: 3 opcodes × 4 encodings).
pub fn e1_dialects() -> Vec<print::Dialect> {
    print::Dialect::class(&[0x11, 0x22, 0x33], &Encoding::family(&[0x5a], &[3]))
}

/// Runs the compact universal user against dialect `idx`; returns
/// `(settled, last_bad_prefix, switches_observed_as_bad_prefixes)`.
pub fn e1_settle(idx: usize, horizon: u64) -> (bool, u64) {
    let dialects = e1_dialects();
    let goal = print::CompactPrintGoal::new("manifesto", 64);
    let user = CompactUniversalUser::new(
        Box::new(print::dialect_class("manifesto", &dialects, true)),
        Box::new(Deadline::new(print::tray_sensing("manifesto"), 24)),
    );
    let mut rng = GocRng::seed_from_u64(100 + idx as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(print::DriverServer::new(dialects[idx].clone())),
        Box::new(user),
        rng,
    );
    let t = exec.run_for(horizon);
    let v = evaluate_compact(&goal, &t);
    (v.achieved(horizon / 10), v.last_bad_prefix.unwrap_or(0))
}

// ---------------------------------------------------------------------------
// E2 — Theorem 1, finite case (delegation goal, protocol class)
// ---------------------------------------------------------------------------

/// The E2 protocol class (8 protocols: 2 greetings × 4 encodings).
pub fn e2_protocols() -> Vec<comp::QueryProtocol> {
    comp::QueryProtocol::class(b"?!", &Encoding::family(&[0x2a], &[5]))
}

fn e2_puzzle() -> Arc<dyn comp::Puzzle + Send + Sync> {
    Arc::new(comp::ModSquareRoot::new(10007))
}

/// Rounds for the finite universal user to solve delegation against
/// protocol `idx` (`classic`: Levin 2^i weighting; else round-robin).
pub fn e2_rounds(idx: usize, classic: bool) -> u64 {
    let protocols = e2_protocols();
    let goal = comp::DelegationGoal::new(e2_puzzle());
    let class = comp::protocol_class(&protocols, e2_puzzle());
    let user = if classic {
        LevinUniversalUser::new(Box::new(class), Box::new(comp::confirmation_sensing()), 8)
    } else {
        LevinUniversalUser::round_robin(
            Box::new(class),
            Box::new(comp::confirmation_sensing()),
            8,
        )
    };
    let mut rng = GocRng::seed_from_u64(200 + idx as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(comp::OracleServer::new(protocols[idx])),
        Box::new(user),
        rng,
    );
    let t = exec.run(5_000_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "E2 idx {idx} classic={classic}: {v:?}");
    v.rounds
}

/// Multi-trial E2 workload for the parallel harness: `trials` independent
/// delegation runs of the classic Levin user against protocol `idx`,
/// aggregated by [`finite_success`]. Wrap in
/// [`goc_core::par::with_thread_count`] to pick the worker count; the report
/// is bit-identical for every choice.
pub fn e2_report(idx: usize, trials: u32) -> SuccessReport {
    let protocols = e2_protocols();
    let goal = comp::DelegationGoal::new(e2_puzzle());
    let server = move || Box::new(comp::OracleServer::new(protocols[idx])) as BoxedServer;
    let user = || {
        Box::new(LevinUniversalUser::new(
            Box::new(comp::protocol_class(&e2_protocols(), e2_puzzle())),
            Box::new(comp::confirmation_sensing()),
            8,
        )) as BoxedUser
    };
    let report = finite_success(&goal, &server, &user, trials, 5_000_000, 210 + idx as u64);
    assert!(report.always(), "E2 report idx {idx}: {report:?}");
    report
}

// ---------------------------------------------------------------------------
// E3 — necessity of overhead (password-locked servers)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PasswordThenSpeak {
    password: Vec<u8>,
    sent: bool,
    halt: Option<Halt>,
}

impl UserStrategy for PasswordThenSpeak {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if input.from_world.as_bytes() == toy::ACK.as_bytes() {
            self.halt = Some(Halt::empty());
            return UserOut::silence();
        }
        if !self.sent {
            self.sent = true;
            UserOut::to_server(Message::from_bytes(self.password.clone()))
        } else {
            UserOut::to_server(Message::from("open"))
        }
    }

    fn halted(&self) -> Option<Halt> {
        self.halt.clone()
    }
}

fn password_class(k: u32) -> SliceEnumerator {
    let mut class = SliceEnumerator::new(format!("pw(2^{k})"));
    for candidate in 0..(1u64 << k) {
        class.push(move || {
            Box::new(PasswordThenSpeak {
                password: format!("{candidate:0width$b}", width = k as usize).into_bytes(),
                sent: false,
                halt: None,
            })
        });
    }
    class
}

/// Rounds to success against a k-bit password lock (adversarial password),
/// for the informed user (`informed = true`) or the universal enumerator.
pub fn e3_rounds(k: u32, informed: bool) -> u64 {
    let goal = toy::MagicWordGoal::new("open");
    let secret = format!("{:0width$b}", (1u64 << k) - 1, width = k as usize);
    let user: BoxedUser = if informed {
        Box::new(PasswordThenSpeak { password: secret.clone().into_bytes(), sent: false, halt: None })
    } else {
        Box::new(LevinUniversalUser::round_robin(
            Box::new(password_class(k)),
            Box::new(toy::ack_sensing()),
            6,
        ))
    };
    let mut rng = GocRng::seed_from_u64(300 + k as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(PasswordLocked::new(Box::new(toy::RelayServer::default()), secret)),
        user,
        rng,
    );
    let t = exec.run(50_000_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "E3 k={k} informed={informed}: {v:?}");
    v.rounds
}

// ---------------------------------------------------------------------------
// E4 — enumeration overhead vs strategy index
// ---------------------------------------------------------------------------

/// Compact case: settle round with the viable strategy planted at `idx` of
/// an `n`-strategy class (all others useless).
pub fn e4_compact_settle(idx: usize, n: usize) -> u64 {
    let mut class = SliceEnumerator::new("planted");
    for j in 0..n {
        if j == idx {
            class.push(|| Box::new(toy::SayThrough::persistent("hi")));
        } else {
            class.push(|| Box::new(goc_core::strategy::SilentUser));
        }
    }
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let user = CompactUniversalUser::new(
        Box::new(class),
        Box::new(Deadline::new(toy::ack_sensing(), 8)),
    );
    let mut rng = GocRng::seed_from_u64(400 + idx as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(user),
        rng,
    );
    let t = exec.run_for(120_000);
    let v = evaluate_compact(&goal, &t);
    assert!(v.achieved(12_000), "E4 idx {idx}: {v:?}");
    v.last_bad_prefix.unwrap_or(0)
}

/// Finite case: rounds for the classic Levin user when the compatible
/// candidate sits at index `shift` of a 16-strategy Caesar class.
pub fn e4_levin_rounds(shift: u8) -> u64 {
    let goal = toy::MagicWordGoal::new("hi");
    let user = LevinUniversalUser::new(
        Box::new(toy::caesar_class("hi", 16, false)),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(500 + shift as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(shift)),
        Box::new(user),
        rng,
    );
    let t = exec.run(5_000_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "E4/Levin shift {shift}: {v:?}");
    v.rounds
}

/// Multi-trial E4 compact workload for the parallel harness: `trials`
/// independent planted-class runs aggregated by [`compact_success`]. Wrap in
/// [`goc_core::par::with_thread_count`] to pick the worker count.
pub fn e4_compact_report(idx: usize, n: usize, trials: u32) -> SuccessReport {
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let server = || Box::new(toy::RelayServer::default()) as BoxedServer;
    let user = move || {
        let mut class = SliceEnumerator::new("planted");
        for j in 0..n {
            if j == idx {
                class.push(|| Box::new(toy::SayThrough::persistent("hi")));
            } else {
                class.push(|| Box::new(goc_core::strategy::SilentUser));
            }
        }
        Box::new(CompactUniversalUser::new(
            Box::new(class),
            Box::new(Deadline::new(toy::ack_sensing(), 8)),
        )) as BoxedUser
    };
    let report =
        compact_success(&goal, &server, &user, trials, 120_000, 12_000, 410 + idx as u64);
    assert!(report.always(), "E4 report idx {idx}: {report:?}");
    report
}

/// Compact universal user over the **deduped VM program class** — the
/// workload whose triangular revisits exercise the candidate-evaluation
/// cache (`goc_vm::cache`). Returns the settle round; read
/// `goc_vm::cache::stats()` around a call to observe the hit rate.
pub fn e4_vm_compact_settle() -> u64 {
    use goc_vm::enumerate::ProgramEnumerator;
    // Alphabet: the bytes of `emit.a 'h'` plus `end` — the viable program
    // ("say h to the peer every round") sits a handful of dedup
    // representatives in, so the triangular schedule revisits everything
    // before it many times.
    let class = ProgramEnumerator::over(vec![0x01, b'h', 0x0f]).with_max_len(3).deduped();
    let goal = toy::CompactMagicWordGoal::new("h", 16);
    let user = CompactUniversalUser::new(
        Box::new(class),
        Box::new(Deadline::new(toy::ack_sensing(), 8)),
    );
    let mut rng = GocRng::seed_from_u64(420);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(user),
        rng,
    );
    let t = exec.run_for(20_000);
    let v = evaluate_compact(&goal, &t);
    assert!(v.achieved(2_000), "E4/VM compact: {v:?}");
    v.last_bad_prefix.unwrap_or(0)
}

// ---------------------------------------------------------------------------
// E5 — sensing ablations (qualitative; see tests/sensing_ablation.rs)
// ---------------------------------------------------------------------------

/// Returns `(halted, achieved)` when the finite universal user runs with
/// deliberately broken sensing against a silent server.
pub fn e5_unsafe_sensing_outcome() -> (bool, bool) {
    let goal = toy::MagicWordGoal::new("hi");
    let user = LevinUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(goc_core::sensing::AlwaysPositive),
        8,
    );
    let mut rng = GocRng::seed_from_u64(600);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc_core::strategy::SilentServer),
        Box::new(user),
        rng,
    );
    let t = exec.run(1_000);
    let v = evaluate_finite(&goal, &t);
    (v.halted, v.achieved)
}

// ---------------------------------------------------------------------------
// E6 — universality tracks helpfulness
// ---------------------------------------------------------------------------

/// Runs the finite universal user against a labelled server pool; returns
/// `(name, expected_helpful, achieved, falsely_halted)` per server.
pub fn e6_boundary() -> Vec<(&'static str, bool, bool, bool)> {
    use goc_core::strategy::{EchoServer, SilentServer};
    use goc_core::wrappers::{Delayed, Lossy};
    let goal = toy::MagicWordGoal::new("hi");
    type ServerFactory = Box<dyn Fn() -> BoxedServer>;
    let pool: Vec<(&'static str, ServerFactory, bool)> = vec![
        ("relay+0", Box::new(|| Box::new(toy::RelayServer::default()) as BoxedServer), true),
        ("relay+5", Box::new(|| Box::new(toy::RelayServer::with_shift(5)) as BoxedServer), true),
        (
            "delayed relay+2",
            Box::new(|| {
                Box::new(Delayed::new(Box::new(toy::RelayServer::with_shift(2)), 3)) as BoxedServer
            }),
            true,
        ),
        ("silent", Box::new(|| Box::new(SilentServer) as BoxedServer), false),
        ("echo", Box::new(|| Box::new(EchoServer) as BoxedServer), false),
        (
            "lossy(1.0) relay",
            Box::new(|| {
                Box::new(Lossy::new(Box::new(toy::RelayServer::default()), 1.0)) as BoxedServer
            }),
            false,
        ),
    ];
    let mut rows = Vec::new();
    for (name, factory, expected) in pool {
        let user = LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, false)),
            Box::new(toy::ack_sensing()),
            8,
        );
        let mut rng = GocRng::seed_from_u64(600 + rows.len() as u64);
        let mut exec =
            Execution::new(goal.spawn_world(&mut rng), factory(), Box::new(user), rng);
        let t = exec.run(100_000);
        let v = evaluate_finite(&goal, &t);
        rows.push((name, expected, v.achieved, v.halted && !v.achieved));
    }
    rows
}

// ---------------------------------------------------------------------------
// E10 — forgivingness necessity
// ---------------------------------------------------------------------------

/// `(universal_achieved_on_fragile, informed_achieved_on_fragile)` for the
/// unforgiving magic-word goal with a shift-3 server.
pub fn e10_fragile() -> (bool, bool) {
    let goal = toy::FragileWordGoal::new("hi");
    let run = |user: BoxedUser, seed: u64| -> bool {
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(3)),
            user,
            rng,
        );
        let t = exec.run(100_000);
        evaluate_finite(&goal, &t).achieved
    };
    let universal = run(
        Box::new(LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, false)),
            Box::new(toy::ack_sensing()),
            8,
        )),
        1_001,
    );
    let informed = run(Box::new(toy::SayThrough::compensating("hi", 3)), 1_002);
    (universal, informed)
}

// ---------------------------------------------------------------------------
// E7 — multi-session mistakes: enumeration vs halving
// ---------------------------------------------------------------------------

/// `(enumeration_mistakes, halving_mistakes)` for a transform class of size
/// `n` with the adversarial concept at the last index.
pub fn e7_mistakes(n: usize) -> (u64, u64) {
    let class = learn::TransformClass::new(
        (0..n).map(|i| trans::Transform::Table(700 + i as u64)).collect(),
    );
    let mut e = learn::EnumerationPolicy::new(n);
    let re = learn::run_arena(
        &class,
        n - 1,
        &mut e,
        (4 * n).max(64) as u64,
        4,
        &mut GocRng::seed_from_u64(701),
    );
    let mut h = learn::HalvingPolicy::new(n);
    let rh = learn::run_arena(
        &class,
        n - 1,
        &mut h,
        (4 * n).max(64) as u64,
        4,
        &mut GocRng::seed_from_u64(702),
    );
    assert!(re.converged() && rh.converged(), "E7 n={n}");
    (re.mistakes, rh.mistakes)
}

/// `(enumeration_mistakes, halving_mistakes)` on the structured
/// **threshold** class, where hypotheses overlap heavily: halving's
/// mistakes track log2 N (each mistake shrinks the version space), while
/// enumeration still pays per wrong hypothesis.
pub fn e7_threshold_mistakes(n: usize) -> (u64, u64) {
    let class = learn::ThresholdClass::evenly_spaced(n);
    let mut e = learn::EnumerationPolicy::new(n);
    let re = learn::run_arena(
        &class,
        n - 1,
        &mut e,
        (8 * n).max(512) as u64,
        1,
        &mut GocRng::seed_from_u64(711),
    );
    let mut h = learn::HalvingPolicy::new(n);
    let rh = learn::run_arena(
        &class,
        n - 1,
        &mut h,
        (8 * n).max(512) as u64,
        1,
        &mut GocRng::seed_from_u64(712),
    );
    assert!(re.converged() && rh.converged(), "E7/threshold n={n}");
    (re.mistakes, rh.mistakes)
}

/// Same game bridged into the real simulator (echo feedback only).
pub fn e7_bridge_mistakes(n: usize) -> (u64, u64) {
    let class = learn::TransformClass::new(
        (0..n).map(|i| trans::Transform::Table(800 + i as u64)).collect(),
    );
    let mut e = learn::EnumerationPolicy::new(n);
    let be = learn::run_bridge(&class, n - 1, &mut e, (4 * n) as u64, 4, &mut GocRng::seed_from_u64(801));
    let mut h = learn::HalvingPolicy::new(n);
    let bh = learn::run_bridge(&class, n - 1, &mut h, (4 * n) as u64, 4, &mut GocRng::seed_from_u64(802));
    (be.mistakes, bh.mistakes)
}

// ---------------------------------------------------------------------------
// E8 — design ablations
// ---------------------------------------------------------------------------

/// Triangular vs linear schedule under impatient sensing (timeout below the
/// ack round-trip): returns `(triangular_bad_prefixes, linear_bad_prefixes)`
/// — linear strands, triangular keeps recovering.
pub fn e8_schedule_ablation() -> (u64, u64) {
    let run = |schedule: Schedule| {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let user = CompactUniversalUser::with_schedule(
            Box::new(toy::caesar_class("hi", 4, true)),
            Box::new(Deadline::new(toy::ack_sensing(), 2)),
            schedule,
        );
        let mut rng = GocRng::seed_from_u64(810);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(1)),
            Box::new(user),
            rng,
        );
        let t = exec.run_for(3_000);
        evaluate_compact(&goal, &t).bad_prefixes
    };
    (run(Schedule::triangular(Some(4))), run(Schedule::linear(Some(4))))
}

/// Patience sweep: settle round of the compact universal user with the
/// deadline timeout set to `timeout` (trade-off: too small = spurious
/// switches; too large = slow abandonment).
pub fn e8_patience_settle(timeout: u64) -> Option<u64> {
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let user = CompactUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, true)),
        Box::new(Deadline::new(toy::ack_sensing(), timeout)),
    );
    let mut rng = GocRng::seed_from_u64(820);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(6)),
        Box::new(user),
        rng,
    );
    let t = exec.run_for(20_000);
    let v = evaluate_compact(&goal, &t);
    if v.achieved(2_000) {
        Some(v.last_bad_prefix.unwrap_or(0))
    } else {
        None
    }
}

/// Multi-trial E8 patience workload for the parallel harness: `trials`
/// independent patience-sweep runs aggregated by [`compact_success`]. Wrap
/// in [`goc_core::par::with_thread_count`] to pick the worker count.
pub fn e8_patience_report(timeout: u64, trials: u32) -> SuccessReport {
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let server = || Box::new(toy::RelayServer::with_shift(6)) as BoxedServer;
    let user = move || {
        Box::new(CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, true)),
            Box::new(Deadline::new(toy::ack_sensing(), timeout)),
        )) as BoxedUser
    };
    compact_success(&goal, &server, &user, trials, 20_000, 2_000, 830 + timeout)
}

// ---------------------------------------------------------------------------
// E11 — quality of achievement (scored goals)
// ---------------------------------------------------------------------------

/// Mean transmission quality (fraction of challenges delivered in time) at
/// `horizon` rounds for three users against the same deep-in-class pipe:
/// `(informed, probing_learner, enumeration_universal)`.
pub fn e11_transmission_quality(horizon: u64) -> (f64, f64, f64) {
    use goc_core::score::score_pairing;
    let family = trans::Transform::family(&[0x0f, 0xf0], &[1, 7], &[41, 42]);
    let goal = trans::TransmissionGoal::new(3, 40, 20);
    let hidden = family[5].clone();

    let h = hidden.clone();
    let informed = score_pairing(
        &goal,
        &{
            let h = hidden.clone();
            move || Box::new(trans::PipeServer::new(h.clone())) as BoxedServer
        },
        &move || Box::new(trans::EncoderUser::new(h.clone())) as BoxedUser,
        3,
        horizon,
        1100,
    );
    let learner = score_pairing(
        &goal,
        &{
            let h = hidden.clone();
            move || Box::new(trans::PipeServer::new(h.clone())) as BoxedServer
        },
        &|| Box::new(trans::ProbingUser::new()) as BoxedUser,
        3,
        horizon,
        1101,
    );
    let fam = family.clone();
    let universal = score_pairing(
        &goal,
        &{
            let h = hidden.clone();
            move || Box::new(trans::PipeServer::new(h.clone())) as BoxedServer
        },
        &move || {
            Box::new(CompactUniversalUser::new(
                Box::new(trans::transform_class(&fam)),
                Box::new(Deadline::new(trans::ok_sensing(), 45)),
            )) as BoxedUser
        },
        3,
        horizon,
        1102,
    );
    (informed.mean(), learner.mean(), universal.mean())
}

// ---------------------------------------------------------------------------
// E9 — substrate throughput
// ---------------------------------------------------------------------------

/// Runs a plain (user, server, world) execution for `rounds` rounds;
/// returns the final round count (for use under a timing harness).
pub fn e9_exec_rounds(rounds: u64) -> u64 {
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let mut rng = GocRng::seed_from_u64(900);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(toy::SayThrough::persistent("hi")),
        rng,
    );
    let t = exec.run_for(rounds);
    t.rounds
}

/// Runs a VM machine for `rounds` rounds on a busy program; returns the
/// number of instructions retired.
pub fn e9_vm_instructions(rounds: u64) -> u64 {
    use goc_vm::{Machine, Program, RoundIo};
    let program = Program::from_bytes({
        // A busy loop: inc + emit + jump back, bounded by fuel each round.
        let mut code = Vec::new();
        goc_vm::Instr::Inc(goc_vm::Reg::new(0)).encode(&mut code);
        goc_vm::Instr::EmitAReg(goc_vm::Reg::new(0)).encode(&mut code);
        goc_vm::Instr::Jmp(-4).encode(&mut code);
        code
    });
    let mut m = Machine::with_fuel(program, 256);
    for _ in 0..rounds {
        let mut io = RoundIo::default();
        m.round(&mut io);
    }
    m.instructions_retired()
}

// ---------------------------------------------------------------------------
// E12 — noise sweep: conquest under an adversarial channel
// ---------------------------------------------------------------------------

/// The drop-probability levels (in percent) swept by E12.
pub fn e12_noise_levels(quick: bool) -> Vec<u64> {
    if quick {
        vec![0, 20, 50]
    } else {
        vec![0, 10, 20, 30, 50, 70, 90]
    }
}

/// One finite-universal run against a shift-3 relay with `drop_pct`% i.i.d.
/// loss on BOTH directions of the user↔server link. Returns
/// `(achieved, rounds)`. Sensing reads the world's ACK, which never crosses
/// the faulted link — so noise can only slow conquest, never fake it.
pub fn e12_noise_outcome(drop_pct: u64, horizon: u64) -> (bool, u64) {
    let goal = toy::MagicWordGoal::new("hi");
    let user = LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        16,
    );
    let p = drop_pct as f64 / 100.0;
    let mut rng = GocRng::seed_from_u64(1200 + drop_pct);
    let mut exec = Execution::with_channels(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(3)),
        Box::new(user),
        rng,
        Box::new(Noisy::drops(p)),
        Box::new(Noisy::drops(p)),
    );
    let t = exec.run(horizon);
    let v = evaluate_finite(&goal, &t);
    (v.achieved, v.rounds)
}

/// One finite-universal run through a total outage of `burst_len` rounds
/// starting at round 0 on both directions. Returns `(achieved, rounds)`;
/// the finite schedule bounds the loss, so conquest is mandatory and the
/// rounds measure pure recovery cost.
pub fn e12_burst_outcome(burst_len: u64, horizon: u64) -> (bool, u64) {
    let goal = toy::MagicWordGoal::new("hi");
    let user = LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        16,
    );
    let schedule = FaultSchedule::single(0, Fault::Burst { len: burst_len });
    let mut rng = GocRng::seed_from_u64(1250);
    let mut exec = Execution::with_channels(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(3)),
        Box::new(user),
        rng,
        Box::new(Scheduled::new(schedule.clone())),
        Box::new(Scheduled::new(schedule)),
    );
    let t = exec.run(horizon);
    let v = evaluate_finite(&goal, &t);
    (v.achieved, v.rounds)
}

// ---------------------------------------------------------------------------
// E13 — zero-copy round loop: resume policy × message pool
// ---------------------------------------------------------------------------

/// The E13 document: long enough (> `goc_core::buf::INLINE_CAP`) that every
/// hot-path message — the framed job, the driver's decoded job, the tray
/// report — spills to the heap, so buffer pooling is actually on the line.
/// (E1's short document stays inline and would measure nothing.)
pub const E13_DOCUMENT: &str = "zero-copy-manifesto-0123456789-abcdefghijklmnop";

/// Rounds per steady-state batch. Each round retires two spilled messages
/// into the recorded view; they return to the thread-local pool when
/// [`Execution::reset_history`] drops the batch, so the batch must keep at
/// most `POOL_CAP = 256` spills in flight for the next batch to be served
/// entirely from the pool.
pub const E13_STEADY_BATCH: u64 = 128;

/// One E13 conquest: the compact universal user under `policy` (with the
/// given message [`CopyMode`] forced for the whole run) settles on dialect
/// `idx` of the E1 class. Returns the settle round (last bad prefix).
///
/// Judged through the borrowing [`TranscriptView`] path — the run never
/// clones its history. `Replay` and `Resume` produce bit-identical
/// executions (same rng stream per slot, same adoption order), so their
/// settle rounds must agree; only the *work* per switch differs, which is
/// what the E13 bench times. The "off" arm runs `Replay` under
/// [`CopyMode::Eager`] — the honest pre-zero-copy engine, whose
/// `Vec<u8>`-backed messages deep-copied on every channel hand-off and view
/// append (each non-silent message is cloned several times per round by the
/// round loop alone).
pub fn e13_settle(idx: usize, policy: ResumePolicy, mode: CopyMode, horizon: u64) -> u64 {
    goc_core::buf::with_copy_mode(mode, || {
        let dialects = e1_dialects();
        let goal = print::CompactPrintGoal::new(E13_DOCUMENT, 64);
        let user = CompactUniversalUser::with_policy(
            Box::new(print::dialect_class(E13_DOCUMENT, &dialects, true)),
            Box::new(Deadline::new(print::tray_sensing(E13_DOCUMENT), 24)),
            policy,
        );
        let mut rng = GocRng::seed_from_u64(1300 + idx as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(print::DriverServer::new(dialects[idx].clone())),
            Box::new(user),
            rng,
        );
        exec.reserve_rounds(horizon);
        for _ in 0..horizon {
            exec.step();
        }
        let v = evaluate_compact_view(&goal, exec.transcript_view());
        assert!(v.achieved(horizon / 10), "E13 idx {idx} policy {policy:?}: {v:?}");
        v.last_bad_prefix.unwrap_or(0)
    })
}

/// All 12 dialects conquered under `policy` via [`goc_core::par::par_map`];
/// returns the settle rounds in dialect order. Trials are independent and
/// order-preserved, so the vector is bit-identical for every `GOC_THREADS`.
/// The copy mode is applied inside each trial (it is thread-local, so it
/// must be scoped on the worker, not the caller).
pub fn e13_settle12(policy: ResumePolicy, mode: CopyMode, horizon: u64) -> Vec<u64> {
    let n = e1_dialects().len();
    goc_core::par::par_map(n, |idx| e13_settle(idx, policy, mode, horizon))
}

/// A warmed steady-state printing system: an informed persistent user
/// resubmitting [`E13_DOCUMENT`] every round against its own dialect's
/// driver. Once warm, a [`batch`](SteadyLoop::batch) performs zero heap
/// allocations when the pool is on — the property the `count-allocs` bench
/// gate enforces.
pub struct SteadyLoop {
    exec: Execution<print::PrinterWorld>,
}

impl SteadyLoop {
    /// Builds the system and runs one warmup batch (fills scratch buffers,
    /// history capacity and the message pool).
    pub fn new() -> Self {
        let dialect = e1_dialects().remove(0);
        let goal = print::CompactPrintGoal::new(E13_DOCUMENT, 64);
        let user = print::PrintingUser::persistent(E13_DOCUMENT, dialect.clone())
            .with_resubmit_every(1);
        let mut rng = GocRng::seed_from_u64(1390);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(print::DriverServer::new(dialect)),
            Box::new(user),
            rng,
        );
        exec.reserve_rounds(2 * E13_STEADY_BATCH);
        let mut steady = SteadyLoop { exec };
        // Two warmup batches: the first grows scratch capacities and puts
        // buffers into circulation, but leaves the pool a few spills below
        // its equilibrium level (batch boundaries keep one round's messages
        // in flight); the second tops the level up, after which a batch is
        // served entirely from the pool.
        steady.batch();
        steady.batch();
        steady
    }

    /// Runs one batch of [`E13_STEADY_BATCH`] rounds, then resets the
    /// recorded history (returning the batch's spilled buffers to the
    /// pool). Returns the world's total page count, so the optimiser
    /// cannot elide the loop.
    pub fn batch(&mut self) -> u64 {
        for _ in 0..E13_STEADY_BATCH {
            self.exec.step();
        }
        let pages =
            self.exec.transcript_view().world_states.last().map(|s| s.total_pages).unwrap_or(0);
        self.exec.reset_history();
        pages
    }
}

impl Default for SteadyLoop {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// E14 — batch VM interpretation: finite-Levin settle over a program class
// ---------------------------------------------------------------------------

/// Horizon for the E14 settle runs (the winning program settles well before
/// this).
pub const E14_HORIZON: u64 = 100_000;

/// Per-round fuel for E14 candidates. High enough that the `jmp`-spinning
/// burner programs scheduled before the winner dominate the run with VM
/// interpretation work — the workload the batch interpreter accelerates.
pub const E14_FUEL: u32 = 8_192;

/// The E14/E16 workload: one finite-Levin conquest over a small VM-program
/// class (alphabet `{jmp, emit.a, 'h'}`, length ≤ 3) with the candidate
/// cache pinned **off**, so the run measures interpretation itself.
///
/// The class plants `[emit.a 'h']` a few indices behind several programs
/// that decode to self-jumps and burn their full fuel every round, so the
/// run's cost is VM dispatch, not harness bookkeeping. Callers pin the
/// interpreter axes ([`goc_vm::batch::with_batch`],
/// [`goc_vm::dispatch::with_dispatch`]) around this.
fn levin_vm_settle_workload(seed: u64) -> u64 {
    let class = goc_vm::ProgramEnumerator::over(vec![0x0b, 0x01, b'h'])
        .with_max_len(3)
        .with_fuel(E14_FUEL)
        .with_cache(false);
    let goal = toy::MagicWordGoal::new("h");
    let user = LevinUniversalUser::new(Box::new(class), Box::new(toy::ack_sensing()), 8);
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(user),
        rng,
    );
    let t = exec.run(E14_HORIZON);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "levin VM settle (seed={seed}): {v:?}");
    v.rounds
}

/// E14: the workload interpreted by the batch (`true`) or exact scalar
/// (`false`) VM path; returns the settle round. The two arms must settle on
/// the identical round (`goc-report` asserts parity).
///
/// The scalar arm is pinned to the legacy `match` core
/// (`with_dispatch(false)`) so the bench keeps its historical baseline —
/// the ≥2x batch gate measures batching against the interpreter E14 was
/// introduced with, not against the (faster) dispatch table, which gets its
/// own axis in E16.
pub fn e14_levin_vm_settle(batch: bool) -> u64 {
    goc_vm::dispatch::with_dispatch(batch, || {
        goc_vm::batch::with_batch(batch, || levin_vm_settle_workload(1_400))
    })
}

// ---------------------------------------------------------------------------
// E15 — pipelined background prewarm: pooled workers pre-execute candidates
// ---------------------------------------------------------------------------

/// Horizon for the E15 settle runs.
pub const E15_HORIZON: u64 = 200_000;

/// Per-round fuel for E15 candidates. As in E14, high enough that the
/// self-jump burner programs dominate the run with VM interpretation work.
pub const E15_FUEL: u32 = 8_192;

/// Base round-robin budget for E15. Small enough that the default prewarm
/// depth (`GOC_PREWARM_DEPTH`, 16) covers a candidate's whole first-pass
/// slot, so a prewarmed candidate replays entirely from the cache.
pub const E15_BASE: u64 = 8;

/// One finite-Levin conquest tuned for the background-prewarm pipeline:
/// round-robin schedule (uniform slots the prewarm depth covers), candidate
/// cache **on**, batch interpretation on, and a winner planted deep in the
/// class (`emit 'h'; emit 'h'` is the first program whose single-round
/// message is exactly `"hh"`, at index 89 of 120) behind dozens of
/// fuel-burning decoys. Returns the settle round.
///
/// With `prewarm` on, idle pool workers speculatively execute the next
/// lookahead window's candidates against empty inboxes while the live
/// window runs, so the foreground replays the burners from the cache; with
/// it off every burner round executes inline on the calling thread. The
/// process-global candidate cache is cleared first so each arm measures its
/// own fills — without this, whichever arm runs second would inherit the
/// first arm's entries and the comparison would collapse.
pub fn e15_levin_prewarm_settle(prewarm: bool) -> u64 {
    goc_vm::cache::clear();
    // Also reset the continuation predictor: first-output classes learned by
    // one arm (or an earlier experiment) must not steer the other arm's
    // speculation, for the same isolation reason the cache is cleared.
    goc_vm::predict::reset();
    goc_core::par::with_prewarm(prewarm, || {
        goc_vm::batch::with_batch(true, || {
            let class = goc_vm::ProgramEnumerator::over(vec![0x0b, 0x01, b'h'])
                .with_max_len(4)
                .with_fuel(E15_FUEL)
                .with_cache(true);
            let goal = toy::MagicWordGoal::new("hh");
            let user = LevinUniversalUser::round_robin(
                Box::new(class),
                Box::new(toy::ack_sensing()),
                E15_BASE,
            );
            let mut rng = GocRng::seed_from_u64(1_500);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::default()),
                Box::new(user),
                rng,
            );
            let t = exec.run(E15_HORIZON);
            let v = evaluate_finite(&goal, &t);
            assert!(v.achieved, "E15 settle (prewarm={prewarm}): {v:?}");
            v.rounds
        })
    })
}

// ---------------------------------------------------------------------------
// E16 — dispatch-table scalar core: table-vs-match settle over the E14 class
// ---------------------------------------------------------------------------

/// E16: the E14 workload with the batch interpreter pinned **off**, so every
/// candidate round runs the scalar core — predecoded table dispatch
/// (`true`) or the legacy `match` loop (`false`); returns the settle round.
/// The two cores must settle on the identical round (`goc-report` asserts
/// parity); the E16 bench times the same pair.
pub fn e16_levin_dispatch_settle(table: bool) -> u64 {
    goc_vm::dispatch::with_dispatch(table, || {
        goc_vm::batch::with_batch(false, || levin_vm_settle_workload(1_600))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_settles_for_first_and_last_dialect() {
        let (ok0, _) = e1_settle(0, 20_000);
        let n = e1_dialects().len();
        let (ok_last, settle_last) = e1_settle(n - 1, 40_000);
        assert!(ok0 && ok_last);
        assert!(settle_last > 0);
    }

    #[test]
    fn e2_round_robin_beats_classic_on_deep_protocols() {
        let classic = e2_rounds(7, true);
        let rr = e2_rounds(7, false);
        assert!(rr < classic, "rr {rr} !< classic {classic}");
    }

    #[test]
    fn e3_doubles() {
        let a = e3_rounds(3, false);
        let b = e3_rounds(4, false);
        assert!(b as f64 >= 1.6 * a as f64);
        assert!(e3_rounds(4, true) < 10);
    }

    #[test]
    fn e4_grows() {
        assert!(e4_compact_settle(2, 16) < e4_compact_settle(12, 16));
        assert!(e4_levin_rounds(8) > 4 * e4_levin_rounds(4));
    }

    #[test]
    fn e5_shape() {
        let (halted, achieved) = e5_unsafe_sensing_outcome();
        assert!(halted && !achieved);
    }

    #[test]
    fn e6_and_e10_shapes() {
        for (name, expected, achieved, false_halt) in e6_boundary() {
            assert_eq!(achieved, expected, "{name}");
            assert!(!false_halt, "{name}");
        }
        let (universal, informed) = e10_fragile();
        assert!(!universal && informed);
    }

    #[test]
    fn e7_shapes() {
        let (e, h) = e7_mistakes(32);
        assert_eq!(e, 31);
        assert!(h <= 6);
        let (be, bh) = e7_bridge_mistakes(8);
        assert_eq!(be, 7);
        assert!(bh <= 4);
    }

    #[test]
    fn e8_shapes() {
        let (tri, lin) = e8_schedule_ablation();
        assert!(tri <= lin);
        // Moderate patience settles; both extremes are worse or fail.
        assert!(e8_patience_settle(8).is_some());
    }

    #[test]
    fn e11_quality_ordering() {
        let (informed, learner, universal) = e11_transmission_quality(3_000);
        assert!(informed > 0.9);
        assert!(learner > universal, "learner {learner} vs universal {universal}");
        assert!(universal > 0.0);
    }

    #[test]
    fn e9_throughput_counts() {
        assert_eq!(e9_exec_rounds(1_000), 1_000);
        assert!(e9_vm_instructions(100) >= 100 * 250);
    }

    #[test]
    fn parallel_reports_match_sequential_reports() {
        use goc_core::par::with_thread_count;
        let seq = with_thread_count(1, || e4_compact_report(8, 24, 4));
        let par = with_thread_count(4, || e4_compact_report(8, 24, 4));
        assert_eq!(seq, par);
        let seq = with_thread_count(1, || e8_patience_report(8, 4));
        let par = with_thread_count(4, || e8_patience_report(8, 4));
        assert_eq!(seq, par);
    }

    #[test]
    fn e12_noise_slows_but_never_stops_conquest() {
        let (clean_ok, clean_rounds) = e12_noise_outcome(0, 100_000);
        let (noisy_ok, noisy_rounds) = e12_noise_outcome(50, 100_000);
        assert!(clean_ok && noisy_ok);
        assert!(noisy_rounds >= clean_rounds, "{noisy_rounds} < {clean_rounds}");
        let (burst_ok, burst_rounds) = e12_burst_outcome(200, 100_000);
        assert!(burst_ok && burst_rounds > 200, "outage must delay past its own length");
    }

    #[test]
    fn e13_replay_and_resume_settle_identically() {
        // Bit-identical executions across both the policy axis and the copy
        // mode axis: only the work per round/switch differs.
        let replay = e13_settle(3, ResumePolicy::Replay, CopyMode::Eager, 8_000);
        let resume = e13_settle(3, ResumePolicy::Resume, CopyMode::Pooled, 8_000);
        assert_eq!(replay, resume, "Replay and Resume must settle at the same round");
        assert!(resume > 0, "dialect 3 is not first: settling takes switches");
    }

    #[test]
    fn e13_settle12_is_thread_count_invariant() {
        use goc_core::par::with_thread_count;
        let seq = with_thread_count(1, || e13_settle12(ResumePolicy::Resume, CopyMode::Pooled, 8_000));
        let par = with_thread_count(4, || e13_settle12(ResumePolicy::Resume, CopyMode::Pooled, 8_000));
        assert_eq!(seq, par);
        assert_eq!(seq.len(), e1_dialects().len());
    }

    #[test]
    fn e15_settle_is_prewarm_and_thread_invariant() {
        use goc_core::par::with_thread_count;
        let inline_t1 = with_thread_count(1, || e15_levin_prewarm_settle(false));
        let inline_t4 = with_thread_count(4, || e15_levin_prewarm_settle(false));
        let warmed_t4 = with_thread_count(4, || e15_levin_prewarm_settle(true));
        assert_eq!(inline_t1, inline_t4);
        assert_eq!(inline_t4, warmed_t4, "prewarm must not move the settle round");
        assert!(warmed_t4 > 0, "the winner is not at index 0: settling takes switches");
    }

    #[test]
    fn e13_steady_batches_are_served_by_the_pool() {
        goc_core::buf::with_pool(true, || {
            let mut steady = SteadyLoop::new();
            goc_core::buf::reset_pool_stats();
            let before = steady.batch();
            let after = steady.batch();
            assert!(after > before, "the printer must keep printing");
            let stats = goc_core::buf::pool_stats();
            assert!(
                stats.misses == 0 && stats.hits > 0,
                "warm steady batches must never allocate a spill: {stats:?}"
            );
        });
    }

    #[test]
    fn e13_document_spills() {
        assert!(E13_DOCUMENT.len() > goc_core::buf::INLINE_CAP);
        let msg = Message::from_bytes(E13_DOCUMENT);
        assert!(msg.len() > goc_core::buf::INLINE_CAP);
    }

    #[test]
    fn e4_vm_compact_settles_and_hits_the_cache() {
        goc_vm::cache::reset_stats();
        let settle = e4_vm_compact_settle();
        assert!(settle > 0, "the viable program is not at index 0: settling takes switches");
        // Triangular revisits re-run identical (program, fuel, prefix)
        // rounds, which the candidate cache must serve.
        let stats = goc_vm::cache::stats();
        assert!(stats.hits > 0, "triangular revisits must hit the cache: {stats:?}");
    }
}
