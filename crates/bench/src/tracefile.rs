//! Reading and aggregating `GOC_TRACE` JSONL files.
//!
//! `goc_core::obs` writes the trace and owns the line format ([`parse`
//! lives there](goc_core::obs::parse_line)); this module is the reader
//! side shared by `goc-report --trace-summary` (flat aggregates) and the
//! `goc-trace` binary (a flame-style tree). Values in a trace are logical
//! — rounds, indices, counts — so every figure printed here is
//! reproducible across machines and thread counts.

use goc_core::obs::{parse_line, TraceLine};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Loads and parses a trace file, in file order. Unparseable lines are
/// counted, not fatal: a trace may be appended to by several runs.
pub fn load(path: &str) -> std::io::Result<(Vec<TraceLine>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = Vec::new();
    let mut skipped = 0usize;
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(raw) {
            Some(line) => lines.push(line),
            None => skipped += 1,
        }
    }
    Ok((lines, skipped))
}

/// Flat aggregates over one trace.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Total parsed records.
    pub records: usize,
    /// Number of task boundary markers.
    pub tasks: usize,
    /// Per span name: completed spans and their entry/exit value sums.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Per event name: occurrences.
    pub events: BTreeMap<String, u64>,
    /// Exported metric lines, in file order.
    pub metrics: Vec<TraceLine>,
}

/// Aggregate over all closures of one span name.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanAgg {
    /// Completed (entered and exited) spans.
    pub count: u64,
    /// Sum of entry annotations.
    pub enter_sum: u64,
    /// Sum of exit annotations (e.g. total rounds executed).
    pub exit_sum: u64,
}

/// Builds the flat [`Summary`] of a parsed trace.
pub fn summarize(lines: &[TraceLine]) -> Summary {
    let mut s = Summary { records: lines.len(), ..Summary::default() };
    // Pending entry values per span name; spans of one name close LIFO
    // within a task stream.
    let mut open: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for line in lines {
        match line {
            TraceLine::Task { .. } => s.tasks += 1,
            TraceLine::Enter { name, value } => {
                open.entry(name).or_default().push(*value);
            }
            TraceLine::Exit { name, value } => {
                let enter = open.get_mut(name.as_str()).and_then(Vec::pop).unwrap_or(0);
                let agg = s.spans.entry(name.clone()).or_default();
                agg.count += 1;
                agg.enter_sum += enter;
                agg.exit_sum += *value;
            }
            TraceLine::Event { name, .. } => {
                *s.events.entry(name.clone()).or_default() += 1;
            }
            TraceLine::Metric { .. } | TraceLine::Hist { .. } => s.metrics.push(line.clone()),
        }
    }
    s
}

/// Renders the `--trace-summary` section.
pub fn render_summary(path: &str, summary: &Summary, skipped: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# trace summary from {path} ({} records, {} tasks{})",
        summary.records,
        summary.tasks,
        if skipped > 0 { format!(", {skipped} unparsed lines") } else { String::new() }
    );
    if !summary.spans.is_empty() {
        let _ = writeln!(out, "\n## spans");
        let _ = writeln!(out, "{:<28} {:>8} {:>14} {:>14}", "span", "count", "enter Σ", "exit Σ");
        for (name, agg) in &summary.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>14} {:>14}",
                name, agg.count, agg.enter_sum, agg.exit_sum
            );
        }
    }
    if !summary.events.is_empty() {
        let _ = writeln!(out, "\n## events");
        let _ = writeln!(out, "{:<28} {:>8}", "event", "count");
        for (name, count) in &summary.events {
            let _ = writeln!(out, "{:<28} {:>8}", name, count);
        }
    }
    if !summary.metrics.is_empty() {
        let _ = writeln!(out, "\n## exported metrics (deterministic scope)");
        for m in &summary.metrics {
            match m {
                TraceLine::Metric { name, kind, value } => {
                    let _ = writeln!(out, "{name:<28} {kind:<8} {value}");
                }
                TraceLine::Hist { name, count, sum, buckets } => {
                    let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                    let peak = buckets.iter().max_by_key(|(_, c)| *c);
                    let mode = peak
                        .map(|(b, _)| {
                            // Bucket b holds values of bit length b:
                            // [2^(b-1), 2^b) — print the range upper bound.
                            if *b == 0 { "0".to_string() } else { format!("<2^{b}") }
                        })
                        .unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "{name:<28} hist     count {count}, sum {sum}, mean {mean:.1}, mode {mode}"
                    );
                }
                _ => {}
            }
        }
    }
    out
}

/// One node of the flame tree: a span path (e.g. `harness.trial` →
/// `exec.run`), with events attached as leaves.
#[derive(Clone, Debug, Default)]
struct Node {
    count: u64,
    exit_sum: u64,
    children: BTreeMap<String, Node>,
    events: BTreeMap<String, u64>,
}

/// Renders the flame-style per-phase breakdown for `goc-trace`: spans
/// nest by their enter/exit structure (reset at every task boundary, so a
/// truncated task cannot corrupt its successors), siblings aggregate by
/// name, and the cost column is the span's **exit value sum** — logical
/// rounds, not wall-clock, which is what makes two traces comparable.
pub fn render_tree(lines: &[TraceLine]) -> String {
    fn node_at<'a>(root: &'a mut Node, path: &[String]) -> &'a mut Node {
        let mut node = root;
        for name in path {
            node = node.children.entry(name.clone()).or_default();
        }
        node
    }
    let mut root = Node::default();
    // Current open-span path as a list of names; indexes into the tree.
    let mut stack: Vec<String> = Vec::new();
    for line in lines {
        match line {
            TraceLine::Task { .. } => stack.clear(),
            TraceLine::Enter { name, .. } => stack.push(name.clone()),
            TraceLine::Exit { name, value } => {
                // Tolerate truncated traces: pop to the matching name if
                // it is open, otherwise drop the exit.
                if let Some(pos) = stack.iter().rposition(|n| n == name) {
                    stack.truncate(pos + 1);
                    let node = node_at(&mut root, &stack);
                    node.count += 1;
                    node.exit_sum += *value;
                    stack.pop();
                }
            }
            TraceLine::Event { name, .. } => {
                *node_at(&mut root, &stack).events.entry(name.clone()).or_default() += 1;
            }
            _ => {}
        }
    }
    let total: u64 = root.children.values().map(|n| n.exit_sum).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<44} {:>8} {:>14} {:>7}", "span / event", "count", "exit Σ", "share");
    render_node(&mut out, &root, 0, total.max(1));
    out
}

fn render_node(out: &mut String, node: &Node, depth: usize, total: u64) {
    for (name, child) in &node.children {
        let label = format!("{}{}", "  ".repeat(depth), name);
        let share = 100.0 * child.exit_sum as f64 / total as f64;
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>14} {:>6.1}%",
            label, child.count, child.exit_sum, share
        );
        for (event, count) in &child.events {
            let elabel = format!("{}· {}", "  ".repeat(depth + 1), event);
            let _ = writeln!(out, "{elabel:<44} {count:>8} {:>14} {:>7}", "", "");
        }
        render_node(out, child, depth + 1, total);
    }
    // Events recorded outside any span (top level of a task).
    if depth == 0 {
        for (event, count) in &node.events {
            let _ = writeln!(out, "{:<44} {:>8} {:>14} {:>7}", format!("· {event}"), count, "", "");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::obs::TraceLine as T;

    fn sample() -> Vec<T> {
        vec![
            T::Task { index: 0 },
            T::Enter { name: "harness.trial".into(), value: 0 },
            T::Enter { name: "exec.run".into(), value: 100 },
            T::Event { name: "universal.spawn".into(), value: 1 },
            T::Exit { name: "exec.run".into(), value: 42 },
            T::Exit { name: "harness.trial".into(), value: 42 },
            T::Task { index: 1 },
            T::Enter { name: "harness.trial".into(), value: 1 },
            T::Enter { name: "exec.run".into(), value: 100 },
            T::Exit { name: "exec.run".into(), value: 58 },
            T::Exit { name: "harness.trial".into(), value: 58 },
            T::Metric { name: "exec.rounds".into(), kind: "counter".into(), value: 100 },
        ]
    }

    #[test]
    fn summarize_counts_spans_events_metrics() {
        let s = summarize(&sample());
        assert_eq!(s.tasks, 2);
        assert_eq!(s.spans["exec.run"].count, 2);
        assert_eq!(s.spans["exec.run"].exit_sum, 100);
        assert_eq!(s.spans["exec.run"].enter_sum, 200);
        assert_eq!(s.events["universal.spawn"], 1);
        assert_eq!(s.metrics.len(), 1);
        let text = render_summary("x.jsonl", &s, 0);
        assert!(text.contains("exec.run"), "{text}");
        assert!(text.contains("exec.rounds"), "{text}");
    }

    #[test]
    fn tree_nests_spans_and_attaches_events() {
        let text = render_tree(&sample());
        assert!(text.contains("harness.trial"), "{text}");
        // exec.run is nested under harness.trial (indented).
        assert!(text.contains("  exec.run"), "{text}");
        assert!(text.contains("universal.spawn"), "{text}");
        // Both exec.run closures aggregate into one node with exit Σ 100.
        assert!(text.contains("100"), "{text}");
    }

    #[test]
    fn tree_resets_at_task_boundaries() {
        // A task that never closes its span must not swallow the next task.
        let lines = vec![
            T::Task { index: 0 },
            T::Enter { name: "exec.run".into(), value: 9 },
            T::Task { index: 1 },
            T::Enter { name: "exec.run".into(), value: 9 },
            T::Exit { name: "exec.run".into(), value: 7 },
        ];
        let text = render_tree(&lines);
        assert!(text.contains("exec.run"), "{text}");
        assert!(!text.contains("  exec.run"), "spans leaked across tasks: {text}");
    }
}
