//! Reading and aggregating `GOC_TRACE` JSONL files.
//!
//! `goc_core::obs` writes the trace and owns the line format ([`parse`
//! lives there](goc_core::obs::parse_line)); this module is the reader
//! side shared by `goc-report --trace-summary` (flat aggregates) and the
//! `goc-trace` binary (a flame-style tree). Values in a trace are logical
//! — rounds, indices, counts — so every figure printed here is
//! reproducible across machines and thread counts.

use goc_core::obs::{parse_line_lenient, TraceLine};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What [`load`] managed (and failed) to parse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Lines parsed into [`TraceLine`]s.
    pub parsed: usize,
    /// Non-blank lines that parsed as nothing this tracer writes.
    pub skipped_lines: usize,
    /// Malformed `buckets` pairs dropped from otherwise-valid histogram
    /// lines (see [`goc_core::obs::parse_line_lenient`]).
    pub skipped_pairs: usize,
}

impl LoadStats {
    /// `true` if anything at all failed to parse.
    pub fn any_skipped(&self) -> bool {
        self.skipped_lines > 0 || self.skipped_pairs > 0
    }
}

/// Loads and parses a trace file, in file order. Isolated unparseable lines
/// (and malformed histogram bucket pairs) are counted, not fatal: a trace
/// may be appended to by several runs. A file whose non-blank lines *all*
/// fail to parse is an error — that is not a trace with zero records, it is
/// the wrong file (or a corrupted one), and pretending otherwise hides the
/// corruption behind an empty-but-valid summary.
pub fn load(path: &str) -> std::io::Result<(Vec<TraceLine>, LoadStats)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = Vec::new();
    let mut stats = LoadStats::default();
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line_lenient(raw) {
            Some((line, pairs)) => {
                lines.push(line);
                stats.parsed += 1;
                stats.skipped_pairs += pairs;
            }
            None => stats.skipped_lines += 1,
        }
    }
    if stats.parsed == 0 && stats.skipped_lines > 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{path}: none of {} non-blank lines parsed as trace records — not a GOC_TRACE file?",
                stats.skipped_lines
            ),
        ));
    }
    Ok((lines, stats))
}

/// Flat aggregates over one trace.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Total parsed records.
    pub records: usize,
    /// Number of task boundary markers.
    pub tasks: usize,
    /// Per span name: completed spans and their entry/exit value sums.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Per event name: occurrences.
    pub events: BTreeMap<String, u64>,
    /// Exported metric lines, in file order.
    pub metrics: Vec<TraceLine>,
}

/// Aggregate over all closures of one span name.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanAgg {
    /// Completed (entered and exited) spans.
    pub count: u64,
    /// Sum of entry annotations.
    pub enter_sum: u64,
    /// Sum of exit annotations (e.g. total rounds executed).
    pub exit_sum: u64,
}

/// Builds the flat [`Summary`] of a parsed trace.
pub fn summarize(lines: &[TraceLine]) -> Summary {
    let mut s = Summary { records: lines.len(), ..Summary::default() };
    // Pending entry values per span name; spans of one name close LIFO
    // within a task stream.
    let mut open: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for line in lines {
        match line {
            TraceLine::Task { .. } => s.tasks += 1,
            TraceLine::Enter { name, value } => {
                open.entry(name).or_default().push(*value);
            }
            TraceLine::Exit { name, value } => {
                let enter = open.get_mut(name.as_str()).and_then(Vec::pop).unwrap_or(0);
                let agg = s.spans.entry(name.clone()).or_default();
                agg.count += 1;
                agg.enter_sum += enter;
                agg.exit_sum += *value;
            }
            TraceLine::Event { name, .. } => {
                *s.events.entry(name.clone()).or_default() += 1;
            }
            TraceLine::Metric { .. } | TraceLine::Hist { .. } => s.metrics.push(line.clone()),
        }
    }
    s
}

/// Renders the `--trace-summary` section.
pub fn render_summary(path: &str, summary: &Summary, stats: LoadStats) -> String {
    let mut out = String::new();
    let mut skipped_note = String::new();
    if stats.skipped_lines > 0 {
        let _ = write!(skipped_note, ", {} unparsed lines", stats.skipped_lines);
    }
    if stats.skipped_pairs > 0 {
        let _ = write!(skipped_note, ", {} malformed bucket pairs", stats.skipped_pairs);
    }
    let _ = writeln!(
        out,
        "# trace summary from {path} ({} records, {} tasks{skipped_note})",
        summary.records, summary.tasks,
    );
    if !summary.spans.is_empty() {
        let _ = writeln!(out, "\n## spans");
        let _ = writeln!(out, "{:<28} {:>8} {:>14} {:>14}", "span", "count", "enter Σ", "exit Σ");
        for (name, agg) in &summary.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>14} {:>14}",
                name, agg.count, agg.enter_sum, agg.exit_sum
            );
        }
    }
    if !summary.events.is_empty() {
        let _ = writeln!(out, "\n## events");
        let _ = writeln!(out, "{:<28} {:>8}", "event", "count");
        for (name, count) in &summary.events {
            let _ = writeln!(out, "{:<28} {:>8}", name, count);
        }
    }
    if !summary.metrics.is_empty() {
        let _ = writeln!(out, "\n## exported metrics (deterministic scope)");
        for m in &summary.metrics {
            match m {
                TraceLine::Metric { name, kind, value } => {
                    let _ = writeln!(out, "{name:<28} {kind:<8} {value}");
                }
                TraceLine::Hist { name, count, sum, buckets, saturated } => {
                    let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                    let peak = buckets.iter().max_by_key(|(_, c)| *c);
                    let mode = peak
                        .map(|(b, _)| {
                            // Bucket b holds values of bit length b:
                            // [2^(b-1), 2^b) — print the range upper bound.
                            if *b == 0 { "0".to_string() } else { format!("<2^{b}") }
                        })
                        .unwrap_or_default();
                    let note = if *saturated { " [sum saturated]" } else { "" };
                    let _ = writeln!(
                        out,
                        "{name:<28} hist     count {count}, sum {sum}, mean {mean:.1}, mode {mode}{note}"
                    );
                }
                _ => {}
            }
        }
    }
    out
}

/// One node of the flame tree: a span path (e.g. `harness.trial` →
/// `exec.run`), with events attached as leaves.
#[derive(Clone, Debug, Default)]
struct Node {
    count: u64,
    exit_sum: u64,
    children: BTreeMap<String, Node>,
    events: BTreeMap<String, u64>,
}

/// Renders the flame-style per-phase breakdown for `goc-trace`: spans
/// nest by their enter/exit structure (reset at every task boundary, so a
/// truncated task cannot corrupt its successors), siblings aggregate by
/// name, and the cost column is the span's **exit value sum** — logical
/// rounds, not wall-clock, which is what makes two traces comparable.
pub fn render_tree(lines: &[TraceLine]) -> String {
    fn node_at<'a>(root: &'a mut Node, path: &[String]) -> &'a mut Node {
        let mut node = root;
        for name in path {
            node = node.children.entry(name.clone()).or_default();
        }
        node
    }
    let mut root = Node::default();
    // Current open-span path as a list of names; indexes into the tree.
    let mut stack: Vec<String> = Vec::new();
    for line in lines {
        match line {
            TraceLine::Task { .. } => stack.clear(),
            TraceLine::Enter { name, .. } => stack.push(name.clone()),
            TraceLine::Exit { name, value } => {
                // Tolerate truncated traces: pop to the matching name if
                // it is open, otherwise drop the exit.
                if let Some(pos) = stack.iter().rposition(|n| n == name) {
                    stack.truncate(pos + 1);
                    let node = node_at(&mut root, &stack);
                    node.count += 1;
                    node.exit_sum += *value;
                    stack.pop();
                }
            }
            TraceLine::Event { name, .. } => {
                *node_at(&mut root, &stack).events.entry(name.clone()).or_default() += 1;
            }
            _ => {}
        }
    }
    let total: u64 = root.children.values().map(|n| n.exit_sum).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<44} {:>8} {:>14} {:>7}", "span / event", "count", "exit Σ", "share");
    render_node(&mut out, &root, 0, total.max(1));
    out
}

fn render_node(out: &mut String, node: &Node, depth: usize, total: u64) {
    for (name, child) in &node.children {
        let label = format!("{}{}", "  ".repeat(depth), name);
        let share = 100.0 * child.exit_sum as f64 / total as f64;
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>14} {:>6.1}%",
            label, child.count, child.exit_sum, share
        );
        for (event, count) in &child.events {
            let elabel = format!("{}· {}", "  ".repeat(depth + 1), event);
            let _ = writeln!(out, "{elabel:<44} {count:>8} {:>14} {:>7}", "", "");
        }
        render_node(out, child, depth + 1, total);
    }
    // Events recorded outside any span (top level of a task).
    if depth == 0 {
        for (event, count) in &node.events {
            let _ = writeln!(out, "{:<44} {:>8} {:>14} {:>7}", format!("· {event}"), count, "", "");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goc_core::obs::TraceLine as T;

    fn sample() -> Vec<T> {
        vec![
            T::Task { index: 0 },
            T::Enter { name: "harness.trial".into(), value: 0 },
            T::Enter { name: "exec.run".into(), value: 100 },
            T::Event { name: "universal.spawn".into(), value: 1 },
            T::Exit { name: "exec.run".into(), value: 42 },
            T::Exit { name: "harness.trial".into(), value: 42 },
            T::Task { index: 1 },
            T::Enter { name: "harness.trial".into(), value: 1 },
            T::Enter { name: "exec.run".into(), value: 100 },
            T::Exit { name: "exec.run".into(), value: 58 },
            T::Exit { name: "harness.trial".into(), value: 58 },
            T::Metric { name: "exec.rounds".into(), kind: "counter".into(), value: 100 },
        ]
    }

    #[test]
    fn summarize_counts_spans_events_metrics() {
        let s = summarize(&sample());
        assert_eq!(s.tasks, 2);
        assert_eq!(s.spans["exec.run"].count, 2);
        assert_eq!(s.spans["exec.run"].exit_sum, 100);
        assert_eq!(s.spans["exec.run"].enter_sum, 200);
        assert_eq!(s.events["universal.spawn"], 1);
        assert_eq!(s.metrics.len(), 1);
        let text = render_summary("x.jsonl", &s, LoadStats::default());
        assert!(text.contains("exec.run"), "{text}");
        assert!(text.contains("exec.rounds"), "{text}");
    }

    #[test]
    fn summary_surfaces_skip_counts() {
        let s = summarize(&sample());
        let text = render_summary(
            "x.jsonl",
            &s,
            LoadStats { parsed: s.records, skipped_lines: 3, skipped_pairs: 2 },
        );
        assert!(text.contains("3 unparsed lines"), "{text}");
        assert!(text.contains("2 malformed bucket pairs"), "{text}");
        // And a clean load prints neither.
        let clean = render_summary("x.jsonl", &s, LoadStats::default());
        assert!(!clean.contains("unparsed"), "{clean}");
        assert!(!clean.contains("malformed"), "{clean}");
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("goc-tracefile-test-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn load_counts_skipped_lines_and_pairs() {
        let path = write_temp(
            "mixed",
            concat!(
                "{\"k\":\"task\",\"i\":0}\n",
                "this line is garbage\n",
                "{\"k\":\"metric\",\"t\":\"hist\",\"n\":\"h\",\"count\":2,\"sum\":9,\"buckets\":\"3:1,bad,4:1\"}\n",
                "\n",
            ),
        );
        let (lines, stats) = load(&path).expect("partially valid file loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(lines.len(), 2);
        assert_eq!(stats, LoadStats { parsed: 2, skipped_lines: 1, skipped_pairs: 1 });
        assert!(stats.any_skipped());
    }

    #[test]
    fn load_rejects_fully_unparseable_file() {
        let path = write_temp("garbage", "not a trace\nstill not a trace\n");
        let err = load(&path).expect_err("all-garbage file must error");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("none of 2"), "{err}");
    }

    #[test]
    fn load_accepts_empty_file() {
        let path = write_temp("empty", "");
        let (lines, stats) = load(&path).expect("a blank file is a valid empty trace");
        std::fs::remove_file(&path).ok();
        assert!(lines.is_empty());
        assert!(!stats.any_skipped());
    }

    #[test]
    fn tree_nests_spans_and_attaches_events() {
        let text = render_tree(&sample());
        assert!(text.contains("harness.trial"), "{text}");
        // exec.run is nested under harness.trial (indented).
        assert!(text.contains("  exec.run"), "{text}");
        assert!(text.contains("universal.spawn"), "{text}");
        // Both exec.run closures aggregate into one node with exit Σ 100.
        assert!(text.contains("100"), "{text}");
    }

    #[test]
    fn tree_resets_at_task_boundaries() {
        // A task that never closes its span must not swallow the next task.
        let lines = vec![
            T::Task { index: 0 },
            T::Enter { name: "exec.run".into(), value: 9 },
            T::Task { index: 1 },
            T::Enter { name: "exec.run".into(), value: 9 },
            T::Exit { name: "exec.run".into(), value: 7 },
        ];
        let text = render_tree(&lines);
        assert!(text.contains("exec.run"), "{text}");
        assert!(!text.contains("  exec.run"), "spans leaked across tasks: {text}");
    }
}
