//! E14 — the batch VM interpreter, measured end to end.
//!
//! One comparison: a finite-Levin settle over a VM-program class whose
//! early candidates are fuel-burning self-jump programs, run once with the
//! exact scalar interpreter (`GOC_BATCH=0` semantics, forced via
//! [`goc_vm::batch::with_batch`]) and once with the predecoded batch path.
//! Both arms compute the identical settle round — only interpretation
//! speed differs. `ci.sh` gates the batch arm at >= 2x the scalar median.
//!
//! Runs at `t1`: the workload is a single conversation, so threading only
//! adds scheduler noise to what is purely a dispatch-loop comparison.

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};

fn main() {
    let mut g = Bench::group("e14_batch").samples(10);
    let meta = || BenchMeta { threads: Some(1), ..BenchMeta::default() };
    g.bench_tagged("levin_settle_scalar@t1", meta(), || {
        with_thread_count(1, || exp::e14_levin_vm_settle(false))
    });
    g.bench_tagged("levin_settle_batch@t1", meta(), || {
        with_thread_count(1, || exp::e14_levin_vm_settle(true))
    });
    g.finish();
}
