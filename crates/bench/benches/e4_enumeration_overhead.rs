//! E4 — enumeration overhead as a function of the viable strategy's index:
//! compact/triangular (polynomial) vs finite/classic-Levin (exponential).
//! Includes the parallel trial-harness variants (`@tN` = N worker threads)
//! and the candidate-cache workload over the deduped VM program class.

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};

fn main() {
    let mut g = Bench::group("e4_enumeration_overhead").samples(10);
    for idx in [2usize, 8, 16] {
        g.bench(format!("compact_planted/{idx}"), || exp::e4_compact_settle(idx, 24));
    }
    for shift in [2u8, 6, 10] {
        g.bench(format!("levin_index/{shift}"), || exp::e4_levin_rounds(shift));
    }
    for threads in [1usize, 4] {
        g.bench_tagged(
            format!("compact_trials8/16@t{threads}"),
            BenchMeta { threads: Some(threads as u64), ..BenchMeta::default() },
            || with_thread_count(threads, || exp::e4_compact_report(16, 24, 8)),
        );
    }
    // One cold run populates the cache, then a second run is probed for the
    // hit/miss counters. The timed iterations below all execute against the
    // warm cache too, so the recorded counters describe exactly the runs
    // being timed — the steady state triangular revisits actually see.
    goc_vm::cache::clear();
    goc_vm::cache::reset_stats();
    let _ = exp::e4_vm_compact_settle();
    goc_vm::cache::reset_stats();
    let _ = exp::e4_vm_compact_settle();
    let stats = goc_vm::cache::stats();
    g.bench_tagged(
        "vm_compact_triangular",
        BenchMeta {
            cache_hits: Some(stats.hits),
            cache_misses: Some(stats.misses),
            ..BenchMeta::default()
        },
        exp::e4_vm_compact_settle,
    );
    g.finish();
}
