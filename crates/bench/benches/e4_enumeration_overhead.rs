//! E4 — enumeration overhead as a function of the viable strategy's index:
//! compact/triangular (polynomial) vs finite/classic-Levin (exponential).

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e4_enumeration_overhead").samples(10);
    for idx in [2usize, 8, 16] {
        g.bench(format!("compact_planted/{idx}"), || exp::e4_compact_settle(idx, 24));
    }
    for shift in [2u8, 6, 10] {
        g.bench(format!("levin_index/{shift}"), || exp::e4_levin_rounds(shift));
    }
    g.finish();
}
