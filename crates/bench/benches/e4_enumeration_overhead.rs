//! E4 — enumeration overhead as a function of the viable strategy's index:
//! compact/triangular (polynomial) vs finite/classic-Levin (exponential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_enumeration_overhead");
    g.sample_size(10);
    for idx in [2usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("compact_planted", idx), &idx, |b, &idx| {
            b.iter(|| exp::e4_compact_settle(idx, 24));
        });
    }
    for shift in [2u8, 6, 10] {
        g.bench_with_input(BenchmarkId::new("levin_index", shift), &shift, |b, &s| {
            b.iter(|| exp::e4_levin_rounds(s));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
