//! E3 — the 2^k wall: universal vs informed users against password-locked
//! servers. The time series doubles with k for the universal user only.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e3_password_overhead").samples(10);
    for k in [2u32, 4, 6, 8] {
        g.bench(format!("universal/{k}"), || exp::e3_rounds(k, false));
        g.bench(format!("informed/{k}"), || exp::e3_rounds(k, true));
    }
    g.finish();
}
