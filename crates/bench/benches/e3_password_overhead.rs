//! E3 — the 2^k wall: universal vs informed users against password-locked
//! servers. The time series doubles with k for the universal user only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_password_overhead");
    g.sample_size(10);
    for k in [2u32, 4, 6, 8] {
        g.bench_with_input(BenchmarkId::new("universal", k), &k, |b, &k| {
            b.iter(|| exp::e3_rounds(k, false));
        });
        g.bench_with_input(BenchmarkId::new("informed", k), &k, |b, &k| {
            b.iter(|| exp::e3_rounds(k, true));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
