//! E16 — the predecoded dispatch-table scalar core, measured two ways.
//!
//! The micro pair times the raw interpreter loop: `e9_vm_instructions` over
//! 10k rounds of the busy `inc/emit/jmp` program, once on the legacy
//! `match` loop (`GOC_DISPATCH=0` semantics, forced via
//! [`goc_vm::dispatch::with_dispatch`]) and once on the table. `ci.sh`
//! gates the table arm at >= 1.3x the match median.
//!
//! The settle pair times the same axis end to end on the E14-class
//! finite-Levin workload with batching pinned off, so every candidate round
//! runs the scalar core under comparison. Both arms compute the identical
//! settle round — only dispatch differs.
//!
//! Runs at `t1`: both workloads are single conversations; threading only
//! adds scheduler noise to what is purely a dispatch-loop comparison.

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};
use goc_vm::dispatch::with_dispatch;

fn main() {
    let mut g = Bench::group("e16_dispatch").samples(10);
    let meta = |mode: &'static str| BenchMeta {
        threads: Some(1),
        dispatch: Some(mode),
        ..BenchMeta::default()
    };
    g.bench_tagged("vm_instructions_10k_rounds_match", meta("match"), || {
        with_dispatch(false, || exp::e9_vm_instructions(10_000))
    });
    g.bench_tagged("vm_instructions_10k_rounds_table", meta("table"), || {
        with_dispatch(true, || exp::e9_vm_instructions(10_000))
    });
    g.bench_tagged("levin_settle_dispatch_off@t1", meta("match"), || {
        with_thread_count(1, || exp::e16_levin_dispatch_settle(false))
    });
    g.bench_tagged("levin_settle_dispatch_on@t1", meta("table"), || {
        with_thread_count(1, || exp::e16_levin_dispatch_settle(true))
    });
    g.finish();
}
