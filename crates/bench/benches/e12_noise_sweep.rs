//! E12 — noise sweep: wall-clock cost of conquering a helpful relay through
//! increasingly lossy links, plus recovery from a scheduled outage.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e12_noise_sweep").samples(10);
    for pct in [0u64, 20, 50] {
        g.bench(format!("conquest_drop{pct}"), || exp::e12_noise_outcome(pct, 400_000));
    }
    g.bench("recovery_burst256", || exp::e12_burst_outcome(256, 400_000));
    g.finish();
}
