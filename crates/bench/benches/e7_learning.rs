//! E7 — multi-session mistake bounds: enumeration (~N−1) vs halving
//! (~log2 N), plus the simulator bridge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_learning");
    g.sample_size(10);
    for n in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            b.iter(|| exp::e7_mistakes(n));
        });
    }
    g.bench_function("bridge_n16", |b| b.iter(|| exp::e7_bridge_mistakes(16)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
