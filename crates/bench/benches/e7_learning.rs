//! E7 — multi-session mistake bounds: enumeration (~N−1) vs halving
//! (~log2 N), plus the simulator bridge.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e7_learning").samples(10);
    for n in [16usize, 64, 256] {
        g.bench(format!("arena/{n}"), || exp::e7_mistakes(n));
    }
    g.bench("bridge_n16", || exp::e7_bridge_mistakes(16));
    g.finish();
}
