//! E8 — design ablations: schedule choice under impatient sensing, and the
//! sensing-patience sweep, plus the parallel trial-harness variant
//! (`@tN` = N worker threads over the patience workload).

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};

fn main() {
    let mut g = Bench::group("e8_ablations").samples(10);
    g.bench("schedule_triangular_vs_linear", exp::e8_schedule_ablation);
    for timeout in [4u64, 8, 32, 128] {
        g.bench(format!("patience/{timeout}"), || exp::e8_patience_settle(timeout));
    }
    for threads in [1usize, 4] {
        g.bench_tagged(
            format!("patience_trials8/8@t{threads}"),
            BenchMeta { threads: Some(threads as u64), ..BenchMeta::default() },
            || with_thread_count(threads, || exp::e8_patience_report(8, 8)),
        );
    }
    g.finish();
}
