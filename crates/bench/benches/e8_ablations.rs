//! E8 — design ablations: schedule choice under impatient sensing, and the
//! sensing-patience sweep.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e8_ablations").samples(10);
    g.bench("schedule_triangular_vs_linear", exp::e8_schedule_ablation);
    for timeout in [4u64, 8, 32, 128] {
        g.bench(format!("patience/{timeout}"), || exp::e8_patience_settle(timeout));
    }
    g.finish();
}
