//! E8 — design ablations: schedule choice under impatient sensing, and the
//! sensing-patience sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_ablations");
    g.sample_size(10);
    g.bench_function("schedule_triangular_vs_linear", |b| {
        b.iter(exp::e8_schedule_ablation)
    });
    for timeout in [4u64, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::new("patience", timeout), &timeout, |b, &t| {
            b.iter(|| exp::e8_patience_settle(t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
