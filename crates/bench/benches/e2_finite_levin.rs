//! E2 — time for the finite universal user (classic Levin vs round-robin
//! doubling) to solve delegation against each protocol depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_finite_levin");
    g.sample_size(10);
    for idx in [0usize, 3, 7] {
        g.bench_with_input(BenchmarkId::new("classic", idx), &idx, |b, &idx| {
            b.iter(|| exp::e2_rounds(idx, true));
        });
        g.bench_with_input(BenchmarkId::new("round_robin", idx), &idx, |b, &idx| {
            b.iter(|| exp::e2_rounds(idx, false));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
