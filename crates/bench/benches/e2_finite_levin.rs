//! E2 — time for the finite universal user (classic Levin vs round-robin
//! doubling) to solve delegation against each protocol depth.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e2_finite_levin").samples(10);
    for idx in [0usize, 3, 7] {
        g.bench(format!("classic/{idx}"), || exp::e2_rounds(idx, true));
        g.bench(format!("round_robin/{idx}"), || exp::e2_rounds(idx, false));
    }
    g.finish();
}
