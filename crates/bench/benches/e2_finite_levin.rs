//! E2 — time for the finite universal user (classic Levin vs round-robin
//! doubling) to solve delegation against each protocol depth, plus the
//! parallel trial-harness variants (`@tN` = N worker threads; the reports
//! are bit-identical across thread counts, only the wall time moves).

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};

fn main() {
    let mut g = Bench::group("e2_finite_levin").samples(10);
    for idx in [0usize, 3, 7] {
        g.bench(format!("classic/{idx}"), || exp::e2_rounds(idx, true));
        g.bench(format!("round_robin/{idx}"), || exp::e2_rounds(idx, false));
    }
    for threads in [1usize, 4] {
        g.bench_tagged(
            format!("classic_trials8/3@t{threads}"),
            BenchMeta { threads: Some(threads as u64), ..BenchMeta::default() },
            || with_thread_count(threads, || exp::e2_report(3, 8)),
        );
    }
    g.finish();
}
