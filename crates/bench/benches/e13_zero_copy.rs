//! E13 — the zero-copy round loop, measured end to end.
//!
//! Two comparisons, both over the E1 printing class with a spilled
//! (48-byte) document so the message pool is actually exercised:
//!
//! - **Settle wall-clock**: the compact universal user conquering all 12
//!   dialects under `Resume` + pooled copy-on-write buffers (the optimised
//!   path) against `Replay` + eager value-semantics copies — an honest
//!   reproduction of the pre-zero-copy engine, whose `Vec<u8>` messages
//!   deep-copied on every channel hand-off and view append, and whose
//!   revisits re-fed each candidate's full history (O(i²) stepped rounds,
//!   which `Resume` replaces with an O(1) suspend/take). Both arms compute
//!   bit-identical settle rounds. The `@t1`/`@t4` variants run the 12 trials
//!   through the parallel engine.
//! - **Steady-state allocations**: a warmed informed-user loop batched by
//!   [`exp::E13_STEADY_BATCH`] rounds, pooled vs unpooled. With the
//!   `count-allocs` feature the harness records allocations per iteration;
//!   the pooled variant must record **zero** (gated by `ci.sh`).

use goc_bench::experiments as exp;
use goc_core::buf::{with_pool, CopyMode};
use goc_core::par::with_thread_count;
use goc_core::prelude::ResumePolicy;
use goc_testkit::bench::{Bench, BenchMeta};

/// Horizon for the settle arms: past every dialect's settle round (the
/// slowest settles at 1851, and the compact verdict needs a clean
/// `horizon/10` tail after it) but not so far past it that the identical
/// settled tails drown out the switching-phase work being compared. At this
/// horizon the eager-replay arm measures ~4x the pooled-resume arm at `t1`
/// (the CI gate requires >= 2x).
const SETTLE_HORIZON: u64 = 2_400;

fn main() {
    let mut g = Bench::group("e13_zero_copy").samples(10);
    for threads in [1usize, 4] {
        let meta = || BenchMeta { threads: Some(threads as u64), ..BenchMeta::default() };
        g.bench_tagged(format!("settle12_replay_eager@t{threads}"), meta(), || {
            with_thread_count(threads, || {
                exp::e13_settle12(ResumePolicy::Replay, CopyMode::Eager, SETTLE_HORIZON)
            })
        });
        g.bench_tagged(format!("settle12_resume_pooled@t{threads}"), meta(), || {
            with_thread_count(threads, || {
                exp::e13_settle12(ResumePolicy::Resume, CopyMode::Pooled, SETTLE_HORIZON)
            })
        });
    }

    // Steady state: one `SteadyLoop` per variant, warmed by its
    // constructor; each iteration is one batch of rounds. Pooling is
    // thread-local, so the override wraps the batch itself.
    let mut pooled = exp::SteadyLoop::new();
    g.bench_tagged(
        "steady_pooled",
        BenchMeta { elems: Some(exp::E13_STEADY_BATCH), ..BenchMeta::default() },
        move || with_pool(true, || pooled.batch()),
    );
    let mut unpooled = exp::SteadyLoop::new();
    g.bench_tagged(
        "steady_unpooled",
        BenchMeta { elems: Some(exp::E13_STEADY_BATCH), ..BenchMeta::default() },
        move || with_pool(false, || unpooled.batch()),
    );
    g.finish();
}
