//! E1 — time for the compact universal user to run a fixed horizon against
//! each dialect server (settling behaviour; series in `goc-report`).

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e1_compact_universal").samples(10);
    for idx in [0usize, 5, 11] {
        g.bench(format!("{idx}"), || exp::e1_settle(idx, 20_000));
    }
    g.finish();
}
