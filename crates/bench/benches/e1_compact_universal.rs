//! E1 — time for the compact universal user to run a fixed horizon against
//! each dialect server (settling behaviour; series in `goc-report`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_compact_universal");
    g.sample_size(10);
    for idx in [0usize, 5, 11] {
        g.bench_with_input(BenchmarkId::from_parameter(idx), &idx, |b, &idx| {
            b.iter(|| exp::e1_settle(idx, 20_000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
