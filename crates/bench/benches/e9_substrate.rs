//! E9 — substrate throughput: synchronous-execution rounds/s and VM
//! instructions/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use goc_bench::experiments as exp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_substrate");
    g.sample_size(20);
    for rounds in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(rounds));
        g.bench_with_input(BenchmarkId::new("exec_rounds", rounds), &rounds, |b, &r| {
            b.iter(|| exp::e9_exec_rounds(r));
        });
    }
    g.throughput(Throughput::Elements(10_000 * 256));
    g.bench_function("vm_instructions_10k_rounds", |b| {
        b.iter(|| exp::e9_vm_instructions(10_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
