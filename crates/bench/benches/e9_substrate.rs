//! E9 — substrate throughput: synchronous-execution rounds/s and VM
//! instructions/s.

use goc_bench::experiments as exp;
use goc_testkit::bench::Bench;

fn main() {
    let mut g = Bench::group("e9_substrate").samples(20);
    for rounds in [1_000u64, 10_000] {
        g.bench_elems(format!("exec_rounds/{rounds}"), rounds, || exp::e9_exec_rounds(rounds));
    }
    g.bench_elems("vm_instructions_10k_rounds", 10_000 * 256, || {
        exp::e9_vm_instructions(10_000)
    });
    g.finish();
}
