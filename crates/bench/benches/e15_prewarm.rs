//! E15 — pipelined background prewarm, measured end to end.
//!
//! One comparison: a finite-Levin settle over a burner-heavy VM-program
//! class with the candidate cache on, run once with inline candidate
//! construction (`GOC_PREWARM=0` semantics, forced via
//! [`goc_core::par::with_prewarm`]) and once with the pooled pipeline that
//! pre-executes the next lookahead window on idle workers. Both arms
//! compute the identical settle round — only where the burner rounds
//! execute differs. `ci.sh` gates the prewarm arm at >= 1.5x the inline
//! median.
//!
//! Runs at `t4`: the pipeline needs idle workers to overlap with; at `t1`
//! prewarm disables itself and both arms would be the same code path.

use goc_bench::experiments as exp;
use goc_core::par::with_thread_count;
use goc_testkit::bench::{Bench, BenchMeta};

fn main() {
    let mut g = Bench::group("e15_prewarm").samples(10);
    let meta = || BenchMeta { threads: Some(4), ..BenchMeta::default() };
    g.bench_tagged("levin_settle_inline@t4", meta(), || {
        with_thread_count(4, || exp::e15_levin_prewarm_settle(false))
    });
    // Probe pass: the settle fn resets the predictor on entry, so after one
    // representative run the lifetime counters describe exactly that run.
    // Recorded as `prewarm.mispredict` on the timed record that follows
    // (the counter is scheduling-dependent, so it annotates rather than
    // feeds any deterministic gate).
    with_thread_count(4, || exp::e15_levin_prewarm_settle(true));
    let mispredicts = goc_vm::predict::stats().mispredicts;
    g.bench_tagged(
        "levin_settle_prewarm@t4",
        BenchMeta { mispredicts: Some(mispredicts), ..meta() },
        || with_thread_count(4, || exp::e15_levin_prewarm_settle(true)),
    );
    g.finish();
}
