#!/usr/bin/env bash
# Hermetic CI: proves the workspace builds, tests, and reports with NO
# network and NO registry. Any reintroduced external dependency fails here
# at resolution time, before a single test runs.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

# Bench profile: quick (3 samples) by default, so the smoke stays fast;
# CI_BENCH_FULL=1 runs the full sample counts — slower, steadier medians.
# The regression check at the bottom keys off the same knob.
if [ "${CI_BENCH_FULL:-0}" = "1" ]; then
  unset GOC_BENCH_QUICK
else
  export GOC_BENCH_QUICK=1
fi

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline, sequential: GOC_THREADS=1, batch VM on) =="
GOC_THREADS=1 GOC_BATCH=1 cargo test -q --offline --workspace

echo "== tests (offline, sequential: GOC_THREADS=1, batch VM off) =="
GOC_THREADS=1 GOC_BATCH=0 cargo test -q --offline --workspace

echo "== tests (offline, parallel trial engine: GOC_THREADS=4, prewarm on) =="
GOC_THREADS=4 GOC_PREWARM=1 cargo test -q --offline --workspace

echo "== tests (offline, parallel trial engine: GOC_THREADS=4, prewarm off) =="
GOC_THREADS=4 GOC_PREWARM=0 cargo test -q --offline --workspace

echo "== bench harness smoke (${GOC_BENCH_QUICK:+quick, }offline) =="
rm -f target/goc-bench.jsonl  # JSON lines append; start the smoke run clean
cargo bench --offline -p goc-bench --bench e9_substrate
# e4 carries the sequential-vs-parallel @tN pairs and the VM candidate-cache
# probe, so the summary below can show speedup and hit-rate columns.
cargo bench --offline -p goc-bench --bench e4_enumeration_overhead
# e12 exercises the channel layer (noisy links + scheduled outage recovery).
cargo bench --offline -p goc-bench --bench e12_noise_sweep
# e13 prices the zero-copy round loop: settle arms (pooled+resume vs
# eager+replay) feed the >= 2x gate below; the count-allocs feature makes
# the steady arms record allocations per iteration for the zero-alloc gate.
cargo bench --offline -p goc-bench --bench e13_zero_copy --features count-allocs
# e2 carries the finite-Levin settle medians the BENCH_*.json regression
# compare below watches across PRs.
cargo bench --offline -p goc-bench --bench e2_finite_levin
# e14 prices the batch VM interpreter: both arms force their interpreter
# in-process (with_batch), so no GOC_BATCH env is needed here; the scalar
# and batch medians feed the >= 2x gate below.
cargo bench --offline -p goc-bench --bench e14_batch
# e15 prices the pipelined background prewarm: both arms force their
# pipeline mode in-process (with_prewarm under with_thread_count(4)), and
# the inline and prewarmed medians feed the >= 1.5x gate below.
cargo bench --offline -p goc-bench --bench e15_prewarm
# e16 prices the dispatch-table scalar core: both arms force their core
# in-process (with_dispatch), and the match and table medians of the
# instruction micro-bench feed the >= 1.3x gate below.
cargo bench --offline -p goc-bench --bench e16_dispatch

echo "== E13 gate: pooled steady loop is allocation-free =="
pooled_line=$(grep '"id":"steady_pooled"' target/goc-bench.jsonl | tail -n 1)
printf '%s\n' "$pooled_line"
grep -q '"allocs":0' <<<"$pooled_line" \
  || { echo "CI FAIL: steady_pooled must record 0 allocs/iter"; exit 1; }

echo "== experiment report smoke (quick) =="
cargo run --release --offline -p goc-bench --bin goc-report -- --quick

echo "== E13 gate: GOC_RESUME policy is observationally inert =="
# Replay and Resume must be bit-for-bit equivalent across a *whole* report
# run (every experiment, every table) — resuming a suspended candidate may
# only change wall-clock, never an observable byte.
rep_replay=$(GOC_RESUME=replay cargo run --release --offline -p goc-bench --bin goc-report -- --quick)
rep_resume=$(GOC_RESUME=resume cargo run --release --offline -p goc-bench --bin goc-report -- --quick)
if [ "$rep_replay" != "$rep_resume" ]; then
  echo "CI FAIL: goc-report differs under GOC_RESUME=replay vs resume"
  diff <(printf '%s\n' "$rep_replay") <(printf '%s\n' "$rep_resume") || true
  exit 1
fi
echo "replay == resume (report identical)"

echo "== E14 gate: GOC_BATCH is observationally inert =="
# The batch interpreter and the scalar path must be bit-for-bit equivalent
# across a whole report run — lockstep dispatch, predecoded programs, and
# arena-backed buffers may only change wall-clock, never an observable byte.
rep_scalar=$(GOC_BATCH=0 cargo run --release --offline -p goc-bench --bin goc-report -- --quick)
rep_batch=$(GOC_BATCH=1 cargo run --release --offline -p goc-bench --bin goc-report -- --quick)
if [ "$rep_scalar" != "$rep_batch" ]; then
  echo "CI FAIL: goc-report differs under GOC_BATCH=0 vs 1"
  diff <(printf '%s\n' "$rep_scalar") <(printf '%s\n' "$rep_batch") || true
  exit 1
fi
echo "scalar == batch (report identical)"

echo "== obs gate: traces are byte-identical across thread counts =="
# With GOC_TRACE set, the observability layer records spans/events per
# trial and flushes them in task-index order, so the JSONL trace must be
# byte-for-byte identical at any GOC_THREADS. (The disabled-path cost is
# covered by the E13 allocs:0 gate above: obs is compiled in there, and
# the steady loop still records zero allocations per iteration.)
rm -f target/goc-trace-t1.jsonl target/goc-trace-t4.jsonl \
      target/goc-trace-t1-scalar.jsonl target/goc-trace-t4-scalar.jsonl
GOC_TRACE=target/goc-trace-t1.jsonl GOC_THREADS=1 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
GOC_TRACE=target/goc-trace-t4.jsonl GOC_THREADS=4 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
[ -s target/goc-trace-t1.jsonl ] || { echo "CI FAIL: GOC_TRACE produced an empty trace"; exit 1; }
cmp target/goc-trace-t1.jsonl target/goc-trace-t4.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_THREADS=1 and 4"; exit 1; }
# ... and across the interpreter flag: the batch VM's extra machinery is
# nondeterministic-scoped (vm.batch.*, vm.arena.*), so the deterministic
# trace stream must not move by a byte when GOC_BATCH flips, at either
# thread count.
GOC_TRACE=target/goc-trace-t1-scalar.jsonl GOC_THREADS=1 GOC_BATCH=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
GOC_TRACE=target/goc-trace-t4-scalar.jsonl GOC_THREADS=4 GOC_BATCH=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
cmp target/goc-trace-t1.jsonl target/goc-trace-t1-scalar.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_BATCH=1 and 0 at GOC_THREADS=1"; exit 1; }
cmp target/goc-trace-t4.jsonl target/goc-trace-t4-scalar.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_BATCH=1 and 0 at GOC_THREADS=4"; exit 1; }
# ... and across the prewarm pipeline: background speculation only fills a
# cache whose hits are value-identical to execution, and its counters
# (par.pool.*, vm.prewarm.*) are nondeterministic-scoped, so flipping
# GOC_PREWARM must not move the deterministic trace by a byte either — at
# GOC_THREADS=1 (where the pipeline is inert by construction) and at
# GOC_THREADS=4 (where it actually runs).
rm -f target/goc-trace-t1-noprewarm.jsonl target/goc-trace-t4-noprewarm.jsonl
GOC_TRACE=target/goc-trace-t1-noprewarm.jsonl GOC_THREADS=1 GOC_PREWARM=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
GOC_TRACE=target/goc-trace-t4-noprewarm.jsonl GOC_THREADS=4 GOC_PREWARM=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
cmp target/goc-trace-t1.jsonl target/goc-trace-t1-noprewarm.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_PREWARM=1 and 0 at GOC_THREADS=1"; exit 1; }
cmp target/goc-trace-t4.jsonl target/goc-trace-t4-noprewarm.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_PREWARM=1 and 0 at GOC_THREADS=4"; exit 1; }
# ... and across the scalar dispatch core: the predecoded table and the
# legacy `match` loop share one semantics (the handler table is compiled
# from the same instruction definitions), so flipping GOC_DISPATCH must not
# move the deterministic trace by a byte either, at either thread count.
rm -f target/goc-trace-t1-nodispatch.jsonl target/goc-trace-t4-nodispatch.jsonl
GOC_TRACE=target/goc-trace-t1-nodispatch.jsonl GOC_THREADS=1 GOC_DISPATCH=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
GOC_TRACE=target/goc-trace-t4-nodispatch.jsonl GOC_THREADS=4 GOC_DISPATCH=0 \
  cargo run --release --offline -p goc-bench --bin goc-report -- --quick > /dev/null
cmp target/goc-trace-t1.jsonl target/goc-trace-t1-nodispatch.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_DISPATCH=1 and 0 at GOC_THREADS=1"; exit 1; }
cmp target/goc-trace-t4.jsonl target/goc-trace-t4-nodispatch.jsonl \
  || { echo "CI FAIL: GOC_TRACE output differs between GOC_DISPATCH=1 and 0 at GOC_THREADS=4"; exit 1; }
echo "traces identical ($(wc -l < target/goc-trace-t1.jsonl) records, threads x batch x prewarm x dispatch)"

echo "== obs gate: trace readers consume the file =="
tsum=$(cargo run --release --offline -p goc-bench --bin goc-report -- --trace-summary target/goc-trace-t1.jsonl)
printf '%s\n' "$tsum"
grep -q "spans" <<<"$tsum" || { echo "CI FAIL: trace summary missing spans section"; exit 1; }
ttree=$(cargo run --release --offline -p goc-bench --bin goc-trace -- target/goc-trace-t1.jsonl)
grep -q "exec.run" <<<"$ttree" || { echo "CI FAIL: goc-trace tree missing exec.run spans"; exit 1; }

echo "== conformance sweep (two seeds x GOC_THREADS=1/4, reproducible) =="
# The metamorphic sweep must (a) report zero safety violations and (b)
# render byte-identically across thread counts — any failing schedule must
# shrink to the same replayable counterexample regardless of parallelism.
for seed in 0x5EED 42; do
  out1=$(GOC_THREADS=1 cargo run --release --offline -p goc-bench --bin goc-conformance -- --quick --seed "$seed")
  out4=$(GOC_THREADS=4 cargo run --release --offline -p goc-bench --bin goc-conformance -- --quick --seed "$seed")
  if [ "$out1" != "$out4" ]; then
    echo "CI FAIL: conformance sweep not reproducible across thread counts (seed $seed)"
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out4") || true
    exit 1
  fi
  printf '%s\n' "$out1"
  grep -q "safety violations: 0" <<<"$out1" || { echo "CI FAIL: safety violation in conformance sweep (seed $seed)"; exit 1; }
done

echo "== snap gate: golden vectors pin the wire format =="
# The committed tests/golden/*.snap files are byte-exact encodings of two
# canonical checkpoints. Any layout change fails this suite until
# SNAP_VERSION is bumped and the vectors re-blessed — format drift is a
# decision, not an accident.
cargo test -q --offline --test snap_golden

echo "== snap gate: save/resume is observationally invisible (stdout + trace) =="
# `goc resume <scenario> --checkpoint N` steps a session to round N,
# serializes it, restores the bytes into a fresh skeleton, and finishes
# the run; --checkpoint 0 wraps the whole session in the same save/restore
# pair. Interrupting at any round may only change wall-clock: stdout and
# the deterministic GOC_TRACE stream must match byte-for-byte, at both
# thread counts and for both universal-user flavours.
for threads in 1 4; do
  for scen in "magic 7 50 20000" "magic-compact 9 1234 2000"; do
    read -r name seed ckpt horizon <<<"$scen"
    rm -f target/goc-snap-base.jsonl target/goc-snap-ckpt.jsonl
    base=$(GOC_TRACE=target/goc-snap-base.jsonl GOC_THREADS=$threads \
      cargo run --release --offline -- resume "$name" --seed "$seed" --checkpoint 0 --horizon "$horizon")
    ckpt_out=$(GOC_TRACE=target/goc-snap-ckpt.jsonl GOC_THREADS=$threads \
      cargo run --release --offline -- resume "$name" --seed "$seed" --checkpoint "$ckpt" --horizon "$horizon")
    if [ "$base" != "$ckpt_out" ]; then
      echo "CI FAIL: resume $name differs at checkpoint 0 vs $ckpt (GOC_THREADS=$threads)"
      diff <(printf '%s\n' "$base") <(printf '%s\n' "$ckpt_out") || true
      exit 1
    fi
    [ -s target/goc-snap-base.jsonl ] || { echo "CI FAIL: snap gate produced an empty trace"; exit 1; }
    cmp target/goc-snap-base.jsonl target/goc-snap-ckpt.jsonl \
      || { echo "CI FAIL: GOC_TRACE differs for $name at checkpoint 0 vs $ckpt (GOC_THREADS=$threads)"; exit 1; }
    printf 'resume %s: checkpoint 0 == checkpoint %s (t%s): %s\n' "$name" "$ckpt" "$threads" "$base"
  done
done

echo "== snap gate: snapshot files round-trip through disk =="
# The file-based pair: `goc snapshot` writes the bytes, `goc resume --snap`
# reads them back into a fresh process — the finished session must match
# the in-process checkpoint path exactly.
cargo run --release --offline -- snapshot magic --seed 7 --round 50 --out target/goc-ci.snap > /dev/null
from_file=$(cargo run --release --offline -- resume magic --seed 7 --snap target/goc-ci.snap)
uninterrupted=$(cargo run --release --offline -- resume magic --seed 7 --checkpoint 0)
if [ "$from_file" != "$uninterrupted" ]; then
  echo "CI FAIL: resume from snapshot file differs from the uninterrupted run"
  diff <(printf '%s\n' "$from_file") <(printf '%s\n' "$uninterrupted") || true
  exit 1
fi
printf 'snapshot file round-trip: %s\n' "$from_file"

echo "== serve gate: 10k sessions over a real socket settle byte-identically =="
# goc-serve hosts sessions behind the snap-disciplined wire format; goc-load
# drives 10,000 of them (fixed seed, pipelined over 8 connections) and writes
# one sorted outcome line per session. The same fleet run in-process must
# produce the *same bytes* — the socket boundary, the shard scheduler, and
# the connection pipelining are all observationally inert. --shutdown also
# exercises the daemon's drain path (shards joined, worker pool drained).
serve_sock="target/goc-ci-serve.sock"
rm -f "$serve_sock" target/goc-serve-socket.txt target/goc-serve-inproc.txt \
      target/goc-serve-load.jsonl
./target/release/goc-serve --listen "unix:$serve_sock" --shards 4 --quiet &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.1; done
[ -S "$serve_sock" ] || { echo "CI FAIL: goc-serve never bound $serve_sock"; kill "$serve_pid" 2>/dev/null || true; exit 1; }
./target/release/goc-load --mode socket --connect "unix:$serve_sock" \
  --sessions 10000 --conns 8 --seed 42 --scenario mix \
  --out target/goc-serve-socket.txt --json target/goc-serve-load.jsonl --shutdown \
  || { echo "CI FAIL: goc-load reported session failures over the socket"; kill "$serve_pid" 2>/dev/null || true; exit 1; }
wait "$serve_pid" || { echo "CI FAIL: goc-serve exited non-zero"; exit 1; }
./target/release/goc-load --mode inproc \
  --sessions 10000 --seed 42 --scenario mix \
  --out target/goc-serve-inproc.txt --json target/goc-serve-load.jsonl \
  || { echo "CI FAIL: goc-load in-process arm reported failures"; exit 1; }
cmp target/goc-serve-socket.txt target/goc-serve-inproc.txt \
  || { echo "CI FAIL: socket settle differs from in-process settle"; exit 1; }
serve_sum=$(cargo run --release --offline -p goc-bench --bin goc-report -- \
  --serve-summary target/goc-serve-load.jsonl)
printf '%s\n' "$serve_sum"
grep -q "failures 0" <<<"$serve_sum" \
  || { echo "CI FAIL: serve summary reports session failures"; exit 1; }
! grep -Eq "failures [1-9]" <<<"$serve_sum" \
  || { echo "CI FAIL: serve summary reports session failures"; exit 1; }
grep -q "p99" <<<"$serve_sum" \
  || { echo "CI FAIL: serve summary missing latency percentiles"; exit 1; }
echo "10000 sessions settle byte-identically over unix:$serve_sock (0 failures)"

echo "== bench summary consumes the JSON lines =="
summary=$(cargo run --release --offline -p goc-bench --bin goc-report -- --bench-summary)
printf '%s\n' "$summary"
# The summary must surface the candidate-cache hit rate and the parallel
# speedup section — their absence means the bench metadata plumbing broke.
grep -q "% hit" <<<"$summary" || { echo "CI FAIL: cache hit-rate missing from bench summary"; exit 1; }
grep -q "parallel speedup" <<<"$summary" || { echo "CI FAIL: speedup section missing from bench summary"; exit 1; }

echo "== E13 gate: settle improvement >= 2x (eager-replay vs pooled-resume, t1) =="
ratio=$(grep -o '[0-9.]*x improvement' <<<"$summary" | tail -n 1 | grep -o '^[0-9.]*')
[ -n "$ratio" ] || { echo "CI FAIL: E13 improvement line missing from bench summary"; exit 1; }
echo "measured improvement: ${ratio}x"
awk -v r="$ratio" 'BEGIN { exit !(r >= 2.0) }' \
  || { echo "CI FAIL: E13 settle improvement ${ratio}x is below the 2x gate"; exit 1; }

echo "== E14 gate: batch settle improvement >= 2x (scalar vs batch VM, t1) =="
# The E14 line deliberately reads "x batch improvement" so the E13 grep
# above (which requires "x improvement" adjacent) cannot match it, and
# vice versa.
ratio14=$(grep -o '[0-9.]*x batch improvement' <<<"$summary" | tail -n 1 | grep -o '^[0-9.]*')
[ -n "$ratio14" ] || { echo "CI FAIL: E14 improvement line missing from bench summary"; exit 1; }
echo "measured batch improvement: ${ratio14}x"
awk -v r="$ratio14" 'BEGIN { exit !(r >= 2.0) }' \
  || { echo "CI FAIL: E14 batch settle improvement ${ratio14}x is below the 2x gate"; exit 1; }

echo "== E15 gate: prewarmed settle improvement >= 1.5x (inline vs pipelined, t4) =="
# The E15 line reads "x prewarm improvement" so neither the E13 grep
# ("x improvement" adjacent) nor the E14 grep ("x batch improvement") can
# match it, and vice versa.
ratio15=$(grep -o '[0-9.]*x prewarm improvement' <<<"$summary" | tail -n 1 | grep -o '^[0-9.]*')
[ -n "$ratio15" ] || { echo "CI FAIL: E15 improvement line missing from bench summary"; exit 1; }
echo "measured prewarm improvement: ${ratio15}x"
awk -v r="$ratio15" 'BEGIN { exit !(r >= 1.5) }' \
  || { echo "CI FAIL: E15 prewarm settle improvement ${ratio15}x is below the 1.5x gate"; exit 1; }

echo "== E16 gate: dispatch-table improvement >= 1.3x (match vs table core, micro) =="
# The E16 line reads "x dispatch improvement" so none of the E13/E14/E15
# greps above can match it, and vice versa; the section's settle line reads
# "x settle win" to stay out of this grep too.
ratio16=$(grep -o '[0-9.]*x dispatch improvement' <<<"$summary" | tail -n 1 | grep -o '^[0-9.]*')
[ -n "$ratio16" ] || { echo "CI FAIL: E16 improvement line missing from bench summary"; exit 1; }
echo "measured dispatch improvement: ${ratio16}x"
awk -v r="$ratio16" 'BEGIN { exit !(r >= 1.3) }' \
  || { echo "CI FAIL: E16 dispatch improvement ${ratio16}x is below the 1.3x gate"; exit 1; }

echo "== bench regression check against the committed snapshot =="
# BENCH_<n>.json is the quick-mode JSONL snapshot committed with PR <n>;
# the newest one is the baseline. The settle benches backing the
# E2/E13/E14/E15 claims are compared like-for-like — the default quick
# profile against the quick snapshot — so a >10% regression FAILs. Two
# noise defenses keep that gate honest on shared/throttled CI hosts, whose
# wall-clock throughput can swing ±30% with machine load: goc-report
# --compare flags REGRESSION on the *fastest sample* (interference only
# adds time, so the min tracks the code's true cost where a 3-sample
# median cannot), and sub-millisecond rows (µs-scale, where even the min
# sits below the host noise floor) are excluded from the gate. A flagged
# regression must also reproduce on a fresh re-recording of the gated
# benches before it fails the build. A CI_BENCH_FULL=1 run compares
# full-mode numbers against the quick snapshot (different sample counts,
# different noise floor), so it only WARNs. Refresh the snapshot
# (tools/bench quick) when a PR legitimately moves the numbers.
snap=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1)
if [ -n "$snap" ]; then
  cmp_out=$(cargo run --release --offline -p goc-bench --bin goc-report -- \
    --compare "$snap" target/goc-bench.jsonl)
  printf '%s\n' "$cmp_out"
  if grep -E 'e2_finite_levin|e13_zero_copy|e14_batch|e15_prewarm' <<<"$cmp_out" \
      | grep -v 'µs' | grep -q 'REGRESSION'; then
    if [ "${CI_BENCH_FULL:-0}" = "1" ]; then
      echo "CI WARN: settle bench regressed >10% vs $snap (full-mode medians vs quick snapshot; advisory)"
    else
      echo "possible settle regression; re-recording the gated benches to confirm"
      recheck=target/goc-bench-recheck.jsonl
      rm -f "$recheck"
      GOC_BENCH_JSON="$PWD/$recheck" cargo bench --offline -p goc-bench --bench e2_finite_levin
      GOC_BENCH_JSON="$PWD/$recheck" cargo bench --offline -p goc-bench --bench e13_zero_copy --features count-allocs
      GOC_BENCH_JSON="$PWD/$recheck" cargo bench --offline -p goc-bench --bench e14_batch
      GOC_BENCH_JSON="$PWD/$recheck" cargo bench --offline -p goc-bench --bench e15_prewarm
      cmp_out2=$(cargo run --release --offline -p goc-bench --bin goc-report -- \
        --compare "$snap" "$recheck")
      printf '%s\n' "$cmp_out2"
      if grep -E 'e2_finite_levin|e13_zero_copy|e14_batch|e15_prewarm' <<<"$cmp_out2" \
          | grep -v 'µs' | grep -q 'REGRESSION'; then
        echo "CI FAIL: settle bench regressed >10% vs $snap (reproduced on re-run; see tables above)"
        exit 1
      fi
      echo "settle regression did not reproduce on re-run; treating the first recording as scheduler noise"
    fi
  else
    echo "settle benches within 10% of the committed snapshot ($snap)"
  fi
else
  echo "CI WARN: no BENCH_*.json snapshot; skipping regression check"
fi

echo "CI OK"
