#!/usr/bin/env bash
# Hermetic CI: proves the workspace builds, tests, and reports with NO
# network and NO registry. Any reintroduced external dependency fails here
# at resolution time, before a single test runs.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline, sequential: GOC_THREADS=1) =="
GOC_THREADS=1 cargo test -q --offline

echo "== tests (offline, parallel trial engine: GOC_THREADS=4) =="
GOC_THREADS=4 cargo test -q --offline

echo "== bench harness smoke (quick, offline) =="
rm -f target/goc-bench.jsonl  # JSON lines append; start the smoke run clean
GOC_BENCH_QUICK=1 cargo bench --offline -p goc-bench --bench e9_substrate
# e4 carries the sequential-vs-parallel @tN pairs and the VM candidate-cache
# probe, so the summary below can show speedup and hit-rate columns.
GOC_BENCH_QUICK=1 cargo bench --offline -p goc-bench --bench e4_enumeration_overhead
# e12 exercises the channel layer (noisy links + scheduled outage recovery).
GOC_BENCH_QUICK=1 cargo bench --offline -p goc-bench --bench e12_noise_sweep

echo "== experiment report smoke (quick) =="
cargo run --release --offline -p goc-bench --bin goc-report -- --quick

echo "== conformance sweep (two seeds x GOC_THREADS=1/4, reproducible) =="
# The metamorphic sweep must (a) report zero safety violations and (b)
# render byte-identically across thread counts — any failing schedule must
# shrink to the same replayable counterexample regardless of parallelism.
for seed in 0x5EED 42; do
  out1=$(GOC_THREADS=1 cargo run --release --offline -p goc-bench --bin goc-conformance -- --quick --seed "$seed")
  out4=$(GOC_THREADS=4 cargo run --release --offline -p goc-bench --bin goc-conformance -- --quick --seed "$seed")
  if [ "$out1" != "$out4" ]; then
    echo "CI FAIL: conformance sweep not reproducible across thread counts (seed $seed)"
    diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out4") || true
    exit 1
  fi
  printf '%s\n' "$out1"
  grep -q "safety violations: 0" <<<"$out1" || { echo "CI FAIL: safety violation in conformance sweep (seed $seed)"; exit 1; }
done

echo "== bench summary consumes the JSON lines =="
summary=$(cargo run --release --offline -p goc-bench --bin goc-report -- --bench-summary)
printf '%s\n' "$summary"
# The summary must surface the candidate-cache hit rate and the parallel
# speedup section — their absence means the bench metadata plumbing broke.
grep -q "% hit" <<<"$summary" || { echo "CI FAIL: cache hit-rate missing from bench summary"; exit 1; }
grep -q "parallel speedup" <<<"$summary" || { echo "CI FAIL: speedup section missing from bench summary"; exit 1; }

echo "CI OK"
