#!/usr/bin/env bash
# Hermetic CI: proves the workspace builds, tests, and reports with NO
# network and NO registry. Any reintroduced external dependency fails here
# at resolution time, before a single test runs.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline

echo "== bench harness smoke (quick, offline) =="
rm -f target/goc-bench.jsonl  # JSON lines append; start the smoke run clean
GOC_BENCH_QUICK=1 cargo bench --offline -p goc-bench --bench e9_substrate

echo "== experiment report smoke (quick) =="
cargo run --release --offline -p goc-bench --bin goc-report -- --quick

echo "== bench summary consumes the JSON lines =="
cargo run --release --offline -p goc-bench --bin goc-report -- --bench-summary

echo "CI OK"
