//! Differential snapshot/restore property: saving an execution mid-run and
//! restoring it into a fresh skeleton is **observationally invisible**.
//!
//! For every sampled (scenario, seed, checkpoint round) triple, three copies
//! of the same session are driven to the same horizon:
//!
//! - `reference` — never interrupted;
//! - `a` — stepped to the checkpoint, snapshotted, then continued;
//! - `b` — a fresh skeleton that *restored* `a`'s snapshot bytes.
//!
//! All three must settle at the same round with byte-identical transcripts
//! and rendered traces, and `a` and `b` must re-serialize to identical
//! snapshot bytes at the end — the "bit-identical going forward" contract of
//! `goc_core::snap`. Scenarios cover both goal flavours (finite magic-word
//! and compact windowed), both universal users, every `GOC_RESUME` policy
//! (pinned via `with_policy` so parallel test threads cannot race on the
//! environment), and a faulty scheduled channel so in-flight
//! `FaultSchedule` cursors are exercised.

use goc::core::sensing::Deadline;
use goc::core::toy;
use goc::core::trace;
use goc::prelude::*;
use goc_testkit::{check, gens, prop_assert, prop_assert_eq, CaseError};

const WORD: &str = "xyzzy";
const SHIFTS: u8 = 16;
const HORIZON: u64 = 320;

/// One point in the scenario matrix: goal flavour × user × policy × channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavour {
    /// Finite goal, Levin round-robin universal user, perfect channels.
    FiniteRelay,
    /// Finite goal over a `Scheduled` faulty down-channel (cursor state).
    FiniteFaulty,
    /// Compact goal, switch-on-negative user, `ResumePolicy::Restart`.
    CompactRestart,
    /// Compact goal with `ResumePolicy::Replay` (history re-feeding state).
    CompactReplay,
    /// Compact goal with `ResumePolicy::Resume` (slot-table state).
    CompactResume,
}

const FLAVOURS: [Flavour; 5] = [
    Flavour::FiniteRelay,
    Flavour::FiniteFaulty,
    Flavour::CompactRestart,
    Flavour::CompactReplay,
    Flavour::CompactResume,
];

impl Flavour {
    /// Finite-goal runs halt; compact runs go the full horizon.
    fn stops_on_halt(self) -> bool {
        matches!(self, Flavour::FiniteRelay | Flavour::FiniteFaulty)
    }
}

/// Builds one skeleton of the scenario. Called identically for all three
/// copies of a case, so the constructor-time rng draws line up exactly.
fn build(flavour: Flavour, seed: u64) -> Execution<toy::MagicWorld> {
    let mut rng = GocRng::seed_from_u64(seed);
    match flavour {
        Flavour::FiniteRelay | Flavour::FiniteFaulty => {
            let goal = toy::MagicWordGoal::new(WORD);
            let world = goal.spawn_world(&mut rng);
            let user = LevinUniversalUser::round_robin(
                Box::new(toy::caesar_class(WORD, SHIFTS, false)),
                Box::new(toy::ack_sensing()),
                8,
            );
            let shift = rng.below(SHIFTS as u64) as u8;
            let server = Box::new(toy::RelayServer::with_shift(shift));
            if flavour == Flavour::FiniteFaulty {
                let schedule =
                    gens::fault_schedule(200, 6, 4).generate(&mut rng.fork(0x5e1f));
                Execution::with_channels(
                    world,
                    server,
                    Box::new(user),
                    rng,
                    Box::new(Perfect),
                    Box::new(Scheduled::new(schedule)),
                )
            } else {
                Execution::new(world, server, Box::new(user), rng)
            }
        }
        Flavour::CompactRestart | Flavour::CompactReplay | Flavour::CompactResume => {
            let policy = match flavour {
                Flavour::CompactReplay => ResumePolicy::Replay,
                Flavour::CompactResume => ResumePolicy::Resume,
                _ => ResumePolicy::Restart,
            };
            let goal = toy::CompactMagicWordGoal::new(WORD, 16);
            let world = goal.spawn_world(&mut rng);
            let user = CompactUniversalUser::with_policy(
                Box::new(toy::caesar_class(WORD, SHIFTS, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 16)),
                policy,
            );
            let shift = rng.below(SHIFTS as u64) as u8;
            let server = Box::new(toy::RelayServer::with_shift(shift));
            Execution::new(world, server, Box::new(user), rng)
        }
    }
}

/// Steps to `target` rounds, respecting finite-goal halting the same way
/// `Execution::run` does (never stepping a halted user).
fn step_to(exec: &mut Execution<toy::MagicWorld>, target: u64, stop_on_halt: bool) {
    while exec.round() < target {
        if stop_on_halt && exec.user().halted().is_some() {
            break;
        }
        exec.step();
    }
}

/// Drives an execution (already at some round) to the common horizon and
/// returns the full-session transcript.
fn finish(
    exec: &mut Execution<toy::MagicWorld>,
    flavour: Flavour,
) -> Transcript<toy::MagicState> {
    let remaining = HORIZON.saturating_sub(exec.round());
    if flavour.stops_on_halt() {
        exec.run(remaining)
    } else {
        exec.run_for(remaining)
    }
}

fn assert_same_session(
    label: &str,
    x: &Transcript<toy::MagicState>,
    y: &Transcript<toy::MagicState>,
) -> Result<(), CaseError> {
    prop_assert_eq!(x.rounds, y.rounds, "{label}: settle round diverged");
    prop_assert_eq!(&x.stop, &y.stop, "{label}: stop reason diverged");
    prop_assert_eq!(&x.view, &y.view, "{label}: user view diverged");
    prop_assert_eq!(
        &x.world_states,
        &y.world_states,
        "{label}: world history diverged"
    );
    // The rendered trace is the human-facing artifact; byte-compare it too.
    prop_assert_eq!(
        trace::render(x, HORIZON as usize),
        trace::render(y, HORIZON as usize),
        "{label}: rendered trace diverged"
    );
    Ok(())
}

#[test]
fn restore_is_observationally_invisible() {
    check(
        "snapshot_roundtrip",
        gens::tuple3(
            gens::usize_in(0, FLAVOURS.len() - 1),
            gens::u64_in(0, 1 << 20),
            gens::u64_in(0, 160),
        ),
        |&(which, seed, checkpoint): &(usize, u64, u64)| {
            let flavour = FLAVOURS[which];

            let mut reference = build(flavour, seed);
            let t_ref = finish(&mut reference, flavour);

            // Interrupted copy: step to the checkpoint, snapshot, continue.
            let mut a = build(flavour, seed);
            step_to(&mut a, checkpoint, flavour.stops_on_halt());
            let bytes = a
                .save_to_vec()
                .map_err(|e| CaseError::fail(format!("save failed: {e}")))?;

            // Fresh skeleton, state loaded purely from the snapshot bytes.
            let mut b = build(flavour, seed);
            b.restore(&bytes)
                .map_err(|e| CaseError::fail(format!("restore failed: {e}")))?;
            prop_assert_eq!(a.round(), b.round(), "restored round diverged");

            let t_a = finish(&mut a, flavour);
            let t_b = finish(&mut b, flavour);

            assert_same_session("interrupted vs reference", &t_a, &t_ref)?;
            assert_same_session("restored vs reference", &t_b, &t_ref)?;

            // Strongest form of "bit-identical going forward": after the
            // runs, the interrupted and restored copies serialize to the
            // same bytes — every piece of persisted state converged.
            let final_a = a
                .save_to_vec()
                .map_err(|e| CaseError::fail(format!("re-save a failed: {e}")))?;
            let final_b = b
                .save_to_vec()
                .map_err(|e| CaseError::fail(format!("re-save b failed: {e}")))?;
            prop_assert!(
                final_a == final_b,
                "post-run snapshots diverged ({} vs {} bytes)",
                final_a.len(),
                final_b.len()
            );
            Ok(())
        },
    );
}

/// A snapshot taken at round 0 (before any step) must restore and replay the
/// whole session — the degenerate checkpoint is not special-cased anywhere.
#[test]
fn round_zero_snapshot_replays_the_whole_session() {
    for flavour in FLAVOURS {
        let mut reference = build(flavour, 7);
        let t_ref = finish(&mut reference, flavour);

        let mut a = build(flavour, 7);
        let bytes = a.save_to_vec().expect("save at round 0");
        let mut b = build(flavour, 7);
        b.restore(&bytes).expect("restore at round 0");
        let t_b = finish(&mut b, flavour);

        assert_eq!(t_ref.rounds, t_b.rounds, "{flavour:?}: settle round");
        assert_eq!(t_ref.stop, t_b.stop, "{flavour:?}: stop reason");
        assert_eq!(t_ref.view, t_b.view, "{flavour:?}: user view");
        assert_eq!(
            t_ref.world_states, t_b.world_states,
            "{flavour:?}: world history"
        );
    }
}

/// Snapshots are portable across skeletons with the same *configuration*
/// but a different rng seed only via explicit restore — restoring into a
/// differently-seeded skeleton still works (all rng streams are carried in
/// the snapshot), and the restored copy follows the snapshot's seed, not
/// the skeleton's.
#[test]
fn restored_rng_streams_come_from_the_snapshot() {
    let flavour = Flavour::FiniteRelay;
    let mut a = build(flavour, 11);
    step_to(&mut a, 40, true);
    let bytes = a.save_to_vec().expect("save");

    // Skeleton built from a different seed: same parties, different rng.
    // But the server *shift* is part of the constructor configuration that
    // differs between seeds, so rebuild with the matching seed for parties
    // and only perturb the execution rng via the snapshot path.
    let mut b = build(flavour, 11);
    b.restore(&bytes).expect("restore");

    let t_a = finish(&mut a, flavour);
    let t_b = finish(&mut b, flavour);
    assert_eq!(t_a.rounds, t_b.rounds);
    assert_eq!(t_a.view, t_b.view);
}
