//! Experiment E6 — universality exactly tracks helpfulness.
//!
//! A universal user achieves the goal with a server **iff** some user
//! strategy in its class does (i.e. iff the server is helpful for the
//! class). We run the same universal user against a mixed pool of helpful
//! and unhelpful servers and check both directions.

use goc::core::helpful::{finite_helpfulness, TrialConfig};
use goc::core::strategy::{EchoServer, SilentServer};
use goc::core::toy;
use goc::core::wrappers::{Delayed, Lossy};
use goc::prelude::*;

fn class() -> goc::core::enumeration::SliceEnumerator {
    toy::caesar_class("hi", 8, false)
}

fn universal() -> LevinUniversalUser {
    LevinUniversalUser::new(Box::new(class()), Box::new(toy::ack_sensing()), 8)
}

/// A boxed server factory.
type ServerFactory = Box<dyn Fn() -> BoxedServer>;

/// The server pool: (name, factory, expected helpfulness for the class).
fn pool() -> Vec<(&'static str, ServerFactory, bool)> {
    vec![
        ("relay+0", Box::new(|| Box::new(toy::RelayServer::default()) as BoxedServer), true),
        ("relay+5", Box::new(|| Box::new(toy::RelayServer::with_shift(5)) as BoxedServer), true),
        (
            "delayed relay",
            Box::new(|| {
                Box::new(Delayed::new(Box::new(toy::RelayServer::with_shift(2)), 3)) as BoxedServer
            }),
            true,
        ),
        ("silent", Box::new(|| Box::new(SilentServer) as BoxedServer), false),
        // An echo server bounces messages back to the user and never talks
        // to the world: unhelpful for a goal about the world's state.
        ("echo", Box::new(|| Box::new(EchoServer) as BoxedServer), false),
        (
            "total loss",
            Box::new(|| {
                Box::new(Lossy::new(Box::new(toy::RelayServer::default()), 1.0)) as BoxedServer
            }),
            false,
        ),
    ]
}

#[test]
fn helpfulness_checker_classifies_the_pool() {
    let goal = toy::MagicWordGoal::new("hi");
    let cfg = TrialConfig { trials: 3, horizon: 400, seed: 11, window: 50 };
    for (name, factory, expected) in pool() {
        let report = finite_helpfulness(&goal, &*factory, &class(), &cfg);
        assert_eq!(report.helpful, expected, "{name}: {report:?}");
    }
}

#[test]
fn universal_user_succeeds_exactly_on_the_helpful_subpool() {
    let goal = toy::MagicWordGoal::new("hi");
    for (name, factory, expected) in pool() {
        let mut rng = GocRng::seed_from_u64(17);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            factory(),
            Box::new(universal()),
            rng,
        );
        let t = exec.run(100_000);
        let v = evaluate_finite(&goal, &t);
        assert_eq!(
            v.achieved, expected,
            "{name}: universality must track helpfulness exactly ({v:?})"
        );
        if !expected {
            assert!(!v.halted, "{name}: safety also forbids false halts");
        }
    }
}

#[test]
fn partially_lossy_relay_is_still_conquered() {
    // A relay dropping 30% of messages is erratic but helpful: persistence
    // wins. (Forgiving goals tolerate loss; sensing just arrives later.)
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(23);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(Lossy::new(Box::new(toy::RelayServer::with_shift(1)), 0.3)),
        Box::new(universal()),
        rng,
    );
    let t = exec.run(200_000);
    assert!(evaluate_finite(&goal, &t).achieved);
}
