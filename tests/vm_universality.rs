//! The headline construction end-to-end: a universal user over a **raw
//! program enumeration** — not a hand-curated strategy family — achieves the
//! goal by discovering a working program.
//!
//! This is the literal object in the proof of Theorem 1 ("enumerating all
//! relevant user strategies"): `goc-vm` programs are enumerated in
//! length-lex order and the universal user runs them until safe sensing
//! confirms success. The alphabet restriction stands in for "relevant"
//! (a broad class, paper §3's closing remark); the enumeration within it is
//! exhaustive.

use goc::core::toy;
use goc::prelude::*;
use goc::vm::adapter::programs;
use goc::vm::enumerate::ProgramEnumerator;
use goc::vm::Program;

/// The alphabet the greeting program is written in: EmitA opcode, the two
/// letters, and EndRound.
fn alphabet() -> Vec<u8> {
    vec![1, 15, b'h', b'i']
}

#[test]
fn known_program_sits_at_a_reachable_index() {
    let class = ProgramEnumerator::over(alphabet()).with_max_len(5);
    let p = programs::say_to_peer(b"hi");
    let idx = class.index_of(&p).expect("program writable in alphabet");
    assert!(idx < class.total().unwrap());
    assert_eq!(class.program(idx), p);
    // A 4-byte prefix (without EndRound) also works — it comes earlier.
    let shorter = Program::from_bytes(vec![1, b'h', 1, b'i']);
    let idx_short = class.index_of(&shorter).unwrap();
    assert!(idx_short < idx);
}

#[test]
fn universal_user_discovers_a_working_program_from_raw_enumeration() {
    let goal = toy::MagicWordGoal::new("hi");
    let class = ProgramEnumerator::over(alphabet()).with_max_len(4);
    let total = class.total().unwrap();
    assert_eq!(total, 1 + 4 + 16 + 64 + 256, "341 programs in the class");

    let universal = LevinUniversalUser::round_robin(
        Box::new(class),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(1);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(universal),
        rng,
    );
    let t = exec.run(100_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "program search failed: {v:?}");
    assert!(
        v.rounds <= (total as u64) * 8 * 2,
        "round-robin cost bound exceeded: {} rounds",
        v.rounds
    );
}

#[test]
fn program_search_respects_safety_with_unhelpful_server() {
    let goal = toy::MagicWordGoal::new("hi");
    let class = ProgramEnumerator::over(alphabet()).with_max_len(3);
    let universal = LevinUniversalUser::round_robin(
        Box::new(class),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(2);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc::core::strategy::SilentServer),
        Box::new(universal),
        rng,
    );
    let t = exec.run(30_000);
    let v = evaluate_finite(&goal, &t);
    assert!(!v.halted, "no ACK, no halt");
}

#[test]
fn vm_server_and_vm_user_interoperate_under_the_universal_wrapper() {
    // Both endpoints are VM programs: the server is a relay program, the
    // user class is a program enumeration — machine-discovered
    // interoperability on both sides.
    let goal = toy::MagicWordGoal::new("hi");
    let class = ProgramEnumerator::over(alphabet()).with_max_len(4);
    let universal = LevinUniversalUser::round_robin(
        Box::new(class),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(3);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc::vm::VmServer::new(programs::relay())),
        Box::new(universal),
        rng,
    );
    let t = exec.run(100_000);
    assert!(evaluate_finite(&goal, &t).achieved);
}
