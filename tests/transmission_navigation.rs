//! Theorem 1 on the remaining two goals — transmission and navigation — and
//! the learning users that beat enumeration on both (the paper's closing
//! remark on efficient special cases).

use goc::core::sensing::{Deadline, Sensing};
use goc::core::validate;
use goc::core::helpful::TrialConfig;
use goc::goals::navigation as nav;
use goc::goals::transmission as tx;
use goc::prelude::*;

fn transform_family() -> Vec<tx::Transform> {
    tx::Transform::family(&[0x0f, 0xf0], &[1, 7], &[41, 42])
}

#[test]
fn compact_universal_user_conquers_every_transform() {
    let family = transform_family();
    let goal = tx::TransmissionGoal::new(3, 40, 20);
    for (i, transform) in family.iter().enumerate() {
        let universal = CompactUniversalUser::new(
            Box::new(tx::transform_class(&family)),
            Box::new(Deadline::new(tx::ok_sensing(), 45)),
        );
        let mut rng = GocRng::seed_from_u64(31 + i as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(tx::PipeServer::new(transform.clone())),
            Box::new(universal),
            rng,
        );
        let t = exec.run_for(40_000);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(4_000), "transform {i} ({transform:?}): {v:?}");
    }
}

#[test]
fn probing_user_beats_the_universal_user_on_tables() {
    // Against a seeded 256-permutation NOT in the enumeration's family, the
    // enumeration-based universal user fails (no viable member), while the
    // probing learner succeeds — learning covers a strictly broader class.
    let family = transform_family();
    let foreign = tx::Transform::Table(999);
    assert!(!family.contains(&foreign));
    let goal = tx::TransmissionGoal::new(3, 40, 20);

    let universal = CompactUniversalUser::new(
        Box::new(tx::transform_class(&family)),
        Box::new(Deadline::new(tx::ok_sensing(), 45)),
    );
    let mut rng = GocRng::seed_from_u64(5);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(tx::PipeServer::new(foreign.clone())),
        Box::new(universal),
        rng,
    );
    let enum_v = evaluate_compact(&goal, &exec.run_for(20_000));
    assert!(!enum_v.achieved(2_000), "no viable member should exist: {enum_v:?}");

    let mut rng = GocRng::seed_from_u64(6);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(tx::PipeServer::new(foreign)),
        Box::new(tx::ProbingUser::new()),
        rng,
    );
    let probe_v = evaluate_compact(&goal, &exec.run_for(20_000));
    assert!(probe_v.achieved(2_000), "{probe_v:?}");
}

#[test]
fn ok_sensing_with_deadline_is_compactly_safe_and_viable() {
    let family = transform_family();
    let goal = tx::TransmissionGoal::new(3, 40, 20);
    let class = tx::transform_class(&family);
    let cfg = TrialConfig { trials: 2, horizon: 1_200, seed: 7, window: 150 };
    let t1 = family[1].clone();
    let mk = move || Box::new(tx::PipeServer::new(t1.clone())) as BoxedServer;
    let servers: Vec<validate::MakeServer<'_>> = vec![&mk];
    let sensing = || Box::new(Deadline::new(tx::ok_sensing(), 45)) as Box<dyn Sensing>;
    let safety = validate::compact_safety(&goal, &servers, &class, &sensing, &cfg);
    assert!(safety.holds(), "{:?}", safety.violations);
    let viability = validate::compact_viability(&goal, &servers, &class, &sensing, &cfg);
    assert!(viability.holds(), "{:?}", viability.violations);
}

#[test]
fn navigation_universal_user_conquers_every_wiring() {
    let goal = nav::NavigationGoal::new(6, 6, 40);
    for idx in [0usize, 6, 12, 18, 23] {
        let universal = CompactUniversalUser::new(
            Box::new(nav::wiring_class()),
            Box::new(Deadline::new(nav::visit_sensing(), 80)),
        );
        let mut rng = GocRng::seed_from_u64(61 + idx as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(nav::ActuatorServer::new(nav::Wiring::nth(idx))),
            Box::new(universal),
            rng,
        );
        let t = exec.run_for(80_000);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(8_000), "wiring {idx}: {v:?}");
    }
}

#[test]
fn calibrating_navigator_settles_faster_than_enumeration() {
    let goal = nav::NavigationGoal::new(6, 6, 40);
    let wiring = nav::Wiring::nth(20); // deep in the enumeration

    let settle = |user: BoxedUser, seed: u64| -> Option<u64> {
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(nav::ActuatorServer::new(wiring)),
            user,
            rng,
        );
        let t = exec.run_for(80_000);
        let v = evaluate_compact(&goal, &t);
        v.achieved(8_000).then(|| v.last_bad_prefix.unwrap_or(0))
    };

    let enum_settle = settle(
        Box::new(CompactUniversalUser::new(
            Box::new(nav::wiring_class()),
            Box::new(Deadline::new(nav::visit_sensing(), 80)),
        )),
        71,
    )
    .expect("universal user settles");
    let learn_settle =
        settle(Box::new(nav::CalibratingNavigator::new()), 72).expect("calibrator settles");
    assert!(
        learn_settle < enum_settle,
        "calibration ({learn_settle}) should settle before deep enumeration ({enum_settle})"
    );
}

#[test]
fn transmission_with_dialect_and_delay_composition() {
    // Wrappers compose: a delayed pipe is still helpful; the universal user
    // still wins (latency just stretches the deadline budget).
    use goc::core::wrappers::Delayed;
    let family = transform_family();
    let goal = tx::TransmissionGoal::new(3, 60, 30);
    let universal = CompactUniversalUser::new(
        Box::new(tx::transform_class(&family)),
        Box::new(Deadline::new(tx::ok_sensing(), 65)),
    );
    let mut rng = GocRng::seed_from_u64(81);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(Delayed::new(Box::new(tx::PipeServer::new(family[2].clone())), 2)),
        Box::new(universal),
        rng,
    );
    let t = exec.run_for(60_000);
    let v = evaluate_compact(&goal, &t);
    assert!(v.achieved(6_000), "{v:?}");
}
