//! Golden-vector pin for the `goc_core::snap` wire format.
//!
//! Two canonical snapshots — one per universal-user flavour — are checked
//! **byte-exactly** against files under `tests/golden/`. Any change to the
//! encoded layout fails this test until `SNAP_VERSION` is bumped and the
//! vectors are re-blessed, making format drift a decision instead of an
//! accident:
//!
//! ```text
//! GOC_BLESS=1 cargo test --test snap_golden
//! ```
//!
//! then commit the regenerated files *together with* the version bump.
//! The semantic half of the test decodes the committed files and replays
//! them to completion, so a vector that still byte-matches but no longer
//! *means* the same session is caught too.

use goc::core::sensing::Deadline;
use goc::core::snap::{SNAP_MAGIC, SNAP_VERSION};
use goc::core::toy;
use goc::prelude::*;
use std::fs;
use std::path::PathBuf;

const WORD: &str = "xyzzy";
const SEED: u64 = 3;
const CHECKPOINT: u64 = 32;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// The canonical finite-flavour scenario (Levin round-robin over the Caesar
/// class). Everything is pinned: word, class size, budget, seed, shift.
fn finite_skeleton() -> Execution<toy::MagicWorld> {
    let mut rng = GocRng::seed_from_u64(SEED);
    let goal = toy::MagicWordGoal::new(WORD);
    let world = goal.spawn_world(&mut rng);
    let user = LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class(WORD, 16, false)),
        Box::new(toy::ack_sensing()),
        8,
    );
    Execution::new(world, Box::new(toy::RelayServer::with_shift(5)), Box::new(user), rng)
}

/// The canonical compact-flavour scenario (switch-on-negative user with the
/// slot-table `Resume` policy — the policy with the most persisted state).
fn compact_skeleton() -> Execution<toy::MagicWorld> {
    let mut rng = GocRng::seed_from_u64(SEED);
    let goal = toy::CompactMagicWordGoal::new(WORD, 16);
    let world = goal.spawn_world(&mut rng);
    let user = CompactUniversalUser::with_policy(
        Box::new(toy::caesar_class(WORD, 16, true)),
        Box::new(Deadline::new(toy::ack_sensing(), 16)),
        ResumePolicy::Resume,
    );
    Execution::new(world, Box::new(toy::RelayServer::with_shift(5)), Box::new(user), rng)
}

fn canonical_snapshot(mut exec: Execution<toy::MagicWorld>) -> Vec<u8> {
    // A snapshot records real state, and the pre-drawn lookahead buffer is
    // real state that exists only while the prewarm pipeline is on — so the
    // canonical vectors pin the knob exactly like they pin the seed.
    // (Restore works under either setting; only the bytes would differ.)
    goc::core::par::with_prewarm(true, || {
        for _ in 0..CHECKPOINT {
            exec.step();
        }
        exec.save_to_vec().expect("canonical snapshot must encode")
    })
}

fn vectors() -> [(&'static str, Vec<u8>); 2] {
    // The skeleton constructor performs the first lookahead refill, so the
    // prewarm pin has to cover construction as well as the stepped rounds.
    goc::core::par::with_prewarm(true, || {
        [
            ("finite_levin_r32.snap", canonical_snapshot(finite_skeleton())),
            ("compact_resume_r32.snap", canonical_snapshot(compact_skeleton())),
        ]
    })
}

#[test]
fn golden_vectors_are_byte_exact() {
    let blessing = std::env::var_os("GOC_BLESS").is_some();
    for (name, bytes) in vectors() {
        let path = golden_path(name);
        if blessing {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &bytes).unwrap_or_else(|e| panic!("bless {name}: {e}"));
            continue;
        }
        let golden = fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden vector {name} ({e}); regenerate with \
                 GOC_BLESS=1 cargo test --test snap_golden"
            )
        });
        if bytes != golden {
            let first_diff = bytes
                .iter()
                .zip(golden.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| bytes.len().min(golden.len()));
            panic!(
                "snapshot layout drifted from {name}: produced {} bytes vs {} golden, \
                 first difference at offset {first_diff}.\n\
                 If the format change is intentional, bump SNAP_VERSION in \
                 crates/core/src/snap.rs and re-bless the vectors \
                 (GOC_BLESS=1 cargo test --test snap_golden); \
                 otherwise the encoder regressed.",
                bytes.len(),
                golden.len(),
            );
        }
    }
}

/// The committed vectors open with the magic and the *current* version —
/// re-blessing without bumping `SNAP_VERSION` after a layout change would
/// otherwise go unnoticed.
#[test]
fn golden_vectors_carry_the_current_header() {
    for (name, _) in vectors() {
        let golden = fs::read(golden_path(name)).expect("golden vector present");
        assert!(golden.len() > 6, "{name}: truncated vector");
        assert_eq!(&golden[..4], &SNAP_MAGIC, "{name}: bad magic");
        let version = u16::from_le_bytes([golden[4], golden[5]]);
        assert_eq!(version, SNAP_VERSION, "{name}: stale format version");
    }
}

/// Semantic decode: the committed finite vector restores into a fresh
/// skeleton at the canonical round and finishes the session exactly as an
/// uninterrupted run does.
#[test]
fn golden_finite_vector_restores_and_finishes() {
    let golden = fs::read(golden_path("finite_levin_r32.snap")).expect("golden vector present");
    let mut restored = finite_skeleton();
    restored.restore(&golden).expect("golden vector must decode");
    assert_eq!(restored.round(), CHECKPOINT);
    assert_eq!(restored.world_states().len() as u64, CHECKPOINT + 1);
    let t = restored.run(2_000);

    let mut reference = finite_skeleton();
    let t_ref = reference.run(2_000);
    assert_eq!(t.rounds, t_ref.rounds, "settle round drifted");
    assert_eq!(t.stop, t_ref.stop, "halting verdict drifted");
    assert_eq!(t.world_states, t_ref.world_states, "world history drifted");
    assert_eq!(t.view, t_ref.view, "user view drifted");
}

/// Semantic decode for the compact vector, including the `Resume` slot
/// table: the restored copy and an uninterrupted run agree to the horizon.
#[test]
fn golden_compact_vector_restores_and_finishes() {
    let golden = fs::read(golden_path("compact_resume_r32.snap")).expect("golden vector present");
    let mut restored = compact_skeleton();
    restored.restore(&golden).expect("golden vector must decode");
    assert_eq!(restored.round(), CHECKPOINT);
    let t = restored.run_for(400 - CHECKPOINT);

    let mut reference = compact_skeleton();
    let t_ref = reference.run_for(400);
    assert_eq!(t.rounds, t_ref.rounds);
    assert_eq!(t.world_states, t_ref.world_states, "world history drifted");
    assert_eq!(t.view, t_ref.view, "user view drifted");
}

/// The golden vectors double as cross-config integrity fixtures: restoring
/// one into the other flavour's skeleton is an error, not a session.
#[test]
fn golden_vectors_reject_the_wrong_skeleton() {
    let finite = fs::read(golden_path("finite_levin_r32.snap")).expect("golden vector present");
    let mut compact = compact_skeleton();
    assert!(compact.restore(&finite).is_err());
}
