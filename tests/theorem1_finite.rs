//! Experiment E2 — Theorem 1, finite case.
//!
//! For the delegation goal and a class of query protocols, confirmation
//! sensing is safe and viable, and the Levin-style universal user halts with
//! the verified answer against **every** server in the class — and never
//! halts against unhelpful servers (safety).

use goc::core::helpful::TrialConfig;
use goc::core::validate;
use goc::goals::codec::Encoding;
use goc::goals::computation::*;
use goc::prelude::*;
use std::sync::Arc;

fn puzzle() -> Arc<dyn Puzzle + Send + Sync> {
    Arc::new(ModSquareRoot::new(10007))
}

fn protocols() -> Vec<QueryProtocol> {
    QueryProtocol::class(b"?!", &Encoding::family(&[0x2a], &[5]))
}

fn universal(protocols: &[QueryProtocol]) -> LevinUniversalUser {
    LevinUniversalUser::new(
        Box::new(protocol_class(protocols, puzzle())),
        Box::new(confirmation_sensing()),
        8,
    )
}

#[test]
fn universal_client_succeeds_with_every_oracle_server() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    for (i, proto) in protocols.iter().enumerate() {
        for seed in 0..3u64 {
            let mut rng = GocRng::seed_from_u64(10_000 * seed + i as u64);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(OracleServer::new(*proto)),
                Box::new(universal(&protocols)),
                rng,
            );
            let t = exec.run(2_000_000);
            let v = evaluate_finite(&goal, &t);
            assert!(v.achieved, "protocol {i}, seed {seed}: {v:?}");
        }
    }
}

#[test]
fn universal_client_succeeds_with_solver_servers() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    let proto = protocols[protocols.len() - 1];
    let mut rng = GocRng::seed_from_u64(77);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(SolverServer::new(proto, puzzle())),
        Box::new(universal(&protocols)),
        rng,
    );
    let t = exec.run(2_000_000);
    assert!(evaluate_finite(&goal, &t).achieved);
}

#[test]
fn universal_client_never_halts_with_unhelpful_server() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    let mut rng = GocRng::seed_from_u64(5);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc::core::strategy::SilentServer),
        Box::new(universal(&protocols)),
        rng,
    );
    let t = exec.run(50_000);
    let v = evaluate_finite(&goal, &t);
    assert!(!v.halted, "halting without confirmation breaks safety");
    assert!(!v.achieved);
}

#[test]
fn round_robin_variant_matches_and_is_cheaper_on_deep_candidates() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    let deep = protocols[protocols.len() - 1];

    let run = |user: LevinUniversalUser| {
        let mut rng = GocRng::seed_from_u64(42);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(OracleServer::new(deep)),
            Box::new(user),
            rng,
        );
        let t = exec.run(2_000_000);
        evaluate_finite(&goal, &t)
    };

    let classic = run(universal(&protocols));
    let rr = run(LevinUniversalUser::round_robin(
        Box::new(protocol_class(&protocols, puzzle())),
        Box::new(confirmation_sensing()),
        8,
    ));
    assert!(classic.achieved && rr.achieved);
    assert!(
        rr.rounds < classic.rounds,
        "round-robin should beat 2^i Levin on the deepest candidate: {} vs {}",
        rr.rounds,
        classic.rounds
    );
}

#[test]
fn confirmation_sensing_is_safe_and_viable() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    let class = protocol_class(&protocols, puzzle());
    let cfg = TrialConfig { trials: 2, horizon: 400, seed: 3, window: 50 };

    let p0 = protocols[0];
    let p3 = protocols[3];
    let mk0 = move || Box::new(OracleServer::new(p0)) as BoxedServer;
    let mk3 = move || Box::new(OracleServer::new(p3)) as BoxedServer;
    let silent = || Box::new(goc::core::strategy::SilentServer) as BoxedServer;

    // Safety must hold against helpful AND unhelpful servers.
    let servers: Vec<validate::MakeServer<'_>> = vec![&mk0, &mk3, &silent];
    let safety = validate::finite_safety(
        &goal,
        &servers,
        &class,
        &|| Box::new(confirmation_sensing()),
        &cfg,
    );
    assert!(safety.holds(), "{:?}", safety.violations);

    // Viability is only promised with helpful servers.
    let helpful: Vec<validate::MakeServer<'_>> = vec![&mk0, &mk3];
    let viability = validate::finite_viability(
        &goal,
        &helpful,
        &class,
        &|| Box::new(confirmation_sensing()),
        &cfg,
    );
    assert!(viability.holds(), "{:?}", viability.violations);
}

#[test]
fn delegation_goal_is_forgiving() {
    let protocols = protocols();
    let goal = DelegationGoal::new(puzzle());
    let proto = protocols[0];
    let report = goc::core::helpful::finite_forgiving(
        &goal,
        &move || Box::new(DelegationUser::new(proto, puzzle())) as BoxedUser,
        &move || Box::new(OracleServer::new(proto)) as BoxedServer,
        150,
        &TrialConfig { trials: 6, horizon: 600, seed: 8, window: 50 },
    );
    assert!(report.forgiving(), "{report:?}");
}
