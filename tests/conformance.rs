//! Top-level smoke test for the metamorphic conformance sweep.
//!
//! The full sweep (all goal/server-class/sensing triples × all schedule
//! generators, deeper case counts) runs in CI via `goc-conformance`; this
//! keeps a quick, deterministic slice in the tier-1 test suite.

use goc_testkit::conformance::{sweep, SweepConfig};

#[test]
fn quick_conformance_sweep_holds() {
    let report = sweep(&SweepConfig::quick(0xC0FFEE));
    assert!(
        report.safety_violations.is_empty(),
        "safety violations:\n{}",
        report.render()
    );
    assert!(report.holds(), "{}", report.render());
}

#[test]
fn sweep_reports_are_reproducible() {
    let mut cfg = SweepConfig::quick(0xBEEF);
    cfg.cases = 2;
    let a = sweep(&cfg).render();
    let b = sweep(&cfg).render();
    assert_eq!(a, b, "same seed must render the same report");
    assert!(a.contains("RESULT: CONFORMANT"), "{a}");
}
