//! Quantitative (scored) goals — the full version's "goal value" notion:
//! not just *whether* the goal is achieved but *how well*, which is where
//! the cost of universality shows up even among eventual successes.

use goc::core::score::{score_pairing, ScoredGoal};
use goc::core::sensing::Deadline;
use goc::goals::navigation as nav;
use goc::goals::transmission as tx;
use goc::prelude::*;

#[test]
fn transmission_quality_orders_informed_learner_universal() {
    let family = tx::Transform::family(&[0x0f, 0xf0], &[1, 7], &[41, 42]);
    let goal = tx::TransmissionGoal::new(3, 40, 20);
    let hidden = family[5].clone(); // deep in the enumeration
    let horizon = 4_000;

    let h2 = hidden.clone();
    let informed = score_pairing(
        &goal,
        &move || Box::new(tx::PipeServer::new(h2.clone())),
        &{
            let h = hidden.clone();
            move || Box::new(tx::EncoderUser::new(h.clone()))
        },
        3,
        horizon,
        1,
    );

    let h3 = hidden.clone();
    let learner = score_pairing(
        &goal,
        &move || Box::new(tx::PipeServer::new(h3.clone())),
        &|| Box::new(tx::ProbingUser::new()),
        3,
        horizon,
        2,
    );

    let h4 = hidden.clone();
    let fam = family.clone();
    let universal = score_pairing(
        &goal,
        &move || Box::new(tx::PipeServer::new(h4.clone())),
        &move || {
            Box::new(CompactUniversalUser::new(
                Box::new(tx::transform_class(&fam)),
                Box::new(Deadline::new(tx::ok_sensing(), 45)),
            ))
        },
        3,
        horizon,
        3,
    );

    // Everyone eventually delivers; quality ranks them.
    assert!(informed.mean() > 0.95, "informed: {:?}", informed);
    assert!(learner.mean() > universal.mean(),
        "probing ({}) should beat deep enumeration ({}) at this horizon",
        learner.mean(), universal.mean());
    assert!(universal.mean() > 0.3, "universal still scores: {:?}", universal);
    assert!(informed.mean() >= learner.mean());
}

#[test]
fn navigation_quality_reflects_wiring_knowledge() {
    let goal = nav::NavigationGoal::new(6, 6, 40);
    let wiring = nav::Wiring::nth(19);
    let horizon = 6_000;

    let informed = score_pairing(
        &goal,
        &move || Box::new(nav::ActuatorServer::new(wiring)),
        &move || Box::new(nav::GreedyNavigator::new(wiring)),
        3,
        horizon,
        4,
    );
    let calibrating = score_pairing(
        &goal,
        &move || Box::new(nav::ActuatorServer::new(wiring)),
        &|| Box::new(nav::CalibratingNavigator::new()),
        3,
        horizon,
        5,
    );
    let wrong = score_pairing(
        &goal,
        &move || Box::new(nav::ActuatorServer::new(wiring)),
        &|| Box::new(nav::GreedyNavigator::new(nav::Wiring::nth(2))),
        3,
        horizon,
        6,
    );

    assert!(informed.mean() > 0.4, "informed: {:?}", informed);
    // Calibration costs a handful of rounds, then matches the informed rate.
    assert!(calibrating.mean() > 0.8 * informed.mean(),
        "calibrating {} vs informed {}", calibrating.mean(), informed.mean());
    assert!(wrong.mean() < calibrating.mean(),
        "a wrong wiring must score below calibration: {} vs {}",
        wrong.mean(), calibrating.mean());
}

#[test]
fn score_is_zero_on_empty_history_for_all_scored_goals() {
    let tg = tx::TransmissionGoal::new(3, 40, 20);
    assert_eq!(tg.score(&[]), 0.0);
    let ng = nav::NavigationGoal::new(6, 6, 40);
    assert_eq!(ng.score(&[]), 0.0);
}
