//! Experiment E10 — **forgivingness is a necessary hypothesis** of
//! Theorem 1.
//!
//! The paper restricts attention to *forgiving* goals: "every finite partial
//! history can be extended to a successful history" (§2). The fragile
//! magic-word goal breaks that hypothesis — one wrong utterance poisons the
//! world permanently — and the universal constructions demonstrably stop
//! being universal: the viable candidate never gets an unpoisoned world.

use goc::core::helpful::{finite_forgiving, TrialConfig};
use goc::core::toy;
use goc::prelude::*;

#[test]
fn fragile_goal_is_measurably_unforgiving() {
    let goal = toy::FragileWordGoal::new("hi");
    // Even with a perfect rescue pair, a chaotic prefix has almost surely
    // poisoned the fragile world.
    let report = finite_forgiving(
        &goal,
        &|| Box::new(toy::SayThrough::new("hi")) as BoxedUser,
        &|| Box::new(toy::RelayServer::default()) as BoxedServer,
        100,
        &TrialConfig { trials: 8, horizon: 300, seed: 1, window: 50 },
    );
    assert!(!report.forgiving(), "{report:?}");
    // Contrast: the ordinary magic-word goal IS forgiving under the same
    // chaos (asserted again here, side by side).
    let forgiving_goal = toy::MagicWordGoal::new("hi");
    let report2 = finite_forgiving(
        &forgiving_goal,
        &|| Box::new(toy::SayThrough::new("hi")) as BoxedUser,
        &|| Box::new(toy::RelayServer::default()) as BoxedServer,
        100,
        &TrialConfig { trials: 8, horizon: 300, seed: 1, window: 50 },
    );
    assert!(report2.forgiving(), "{report2:?}");
}

#[test]
fn informed_user_still_achieves_the_fragile_goal() {
    // The goal itself is achievable — by a user that says the right thing
    // first. The *helpfulness* precondition holds; only forgivingness fails.
    let goal = toy::FragileWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(2);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(3)),
        Box::new(toy::SayThrough::compensating("hi", 3)),
        rng,
    );
    let t = exec.run(50);
    assert!(evaluate_finite(&goal, &t).achieved);
}

#[test]
fn universal_user_fails_on_the_unforgiving_goal() {
    // Theorem 1's construction enumerates candidates; on the fragile world
    // the first wrong candidate's utterance poisons everything, so the
    // viable candidate (shift 3 → index 3) can never succeed afterwards.
    let goal = toy::FragileWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(3);
    let universal = LevinUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(3)),
        Box::new(universal),
        rng,
    );
    let t = exec.run(100_000);
    let v = evaluate_finite(&goal, &t);
    assert!(!v.achieved, "Theorem 1 must NOT extend to unforgiving goals: {v:?}");
    // Safety still holds: the user never falsely halts.
    assert!(!v.halted);
    // And the world is indeed poisoned.
    assert!(t.world_states.last().unwrap().poisoned);
}

#[test]
fn universal_user_succeeds_if_the_viable_candidate_comes_first() {
    // The failure is specifically about ordering: with shift 0 (candidate 0
    // compatible), the first utterance is already right and the universal
    // user wins. Forgivingness is what frees the theorem from such luck.
    let goal = toy::FragileWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(4);
    let universal = LevinUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(universal),
        rng,
    );
    let t = exec.run(10_000);
    assert!(evaluate_finite(&goal, &t).achieved);
}
