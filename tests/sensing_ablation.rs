//! Experiment E5 — safety and viability are *necessary* hypotheses of
//! Theorem 1.
//!
//! Break each property and watch the matching failure mode appear:
//!
//! - **unsafe** sensing (always positive): the universal user halts
//!   immediately with an unverified, wrong outcome;
//! - **non-viable** sensing (always negative / never positive): the finite
//!   universal user never halts, and the compact one cycles forever.

use goc::core::sensing::{AlwaysNegative, AlwaysPositive, Deadline};
use goc::core::toy;
use goc::prelude::*;

fn finite_universal(sensing: BoxedSensing) -> LevinUniversalUser {
    LevinUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, false)),
        sensing,
        8,
    )
}

#[test]
fn unsafe_sensing_causes_false_halt() {
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(1);
    // Server is unhelpful: the goal is unachievable, yet unsafe sensing
    // makes the user "succeed" instantly.
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc::core::strategy::SilentServer),
        Box::new(finite_universal(Box::new(AlwaysPositive))),
        rng,
    );
    let t = exec.run(1_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.halted, "unsafe sensing halts immediately");
    assert!(!v.achieved, "…and the referee rejects: the goal was NOT achieved");
}

#[test]
fn nonviable_sensing_prevents_halting_even_with_helpful_server() {
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(2);
    // The server is perfectly helpful, but sensing never reports success.
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::default()),
        Box::new(finite_universal(Box::new(AlwaysNegative))),
        rng,
    );
    let t = exec.run(20_000);
    let v = evaluate_finite(&goal, &t);
    assert!(!v.halted, "no positive indication, no halt — budget exhausted");
    // Note: the *world* did hear the word (candidate 0 is compatible); the
    // user just can't know. This is a viability failure, not unhelpfulness.
    assert!(t.world_states.last().unwrap().heard_count > 0);
}

#[test]
fn compact_user_with_nonviable_sensing_cycles_forever() {
    let _goal = toy::CompactMagicWordGoal::new("hi", 16);
    let mut user = CompactUniversalUser::new(
        Box::new(toy::caesar_class("hi", 4, true)),
        Box::new(AlwaysNegative),
    );
    let mut rng = GocRng::seed_from_u64(3);
    // Drive by hand to count switches.
    for round in 0..1_000 {
        let mut ctx = StepCtx::new(round, &mut rng);
        let _ = goc::core::strategy::UserStrategy::step(&mut user, &mut ctx, &UserIn::default());
    }
    assert!(
        user.switch_count() >= 400,
        "always-negative sensing forces a switch nearly every round: {}",
        user.switch_count()
    );
}

#[test]
fn compact_user_with_unsafe_sensing_strands_on_wrong_strategy() {
    // Always-positive sensing never triggers a switch, so the compact user
    // strands on candidate 0 even when it is incompatible with the server.
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let mut rng = GocRng::seed_from_u64(4);
    let user = CompactUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, true)),
        Box::new(AlwaysPositive),
    );
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(5)), // needs candidate 5
        Box::new(user),
        rng,
    );
    let t = exec.run_for(5_000);
    let v = evaluate_compact(&goal, &t);
    assert!(!v.achieved(500), "stranded on candidate 0: {v:?}");
}

#[test]
fn correct_sensing_restores_the_theorem() {
    // Same setup as the failures above, with the honest sensing: works.
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let mut rng = GocRng::seed_from_u64(5);
    let user = CompactUniversalUser::new(
        Box::new(toy::caesar_class("hi", 8, true)),
        Box::new(Deadline::new(toy::ack_sensing(), 8)),
    );
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(toy::RelayServer::with_shift(5)),
        Box::new(user),
        rng,
    );
    let t = exec.run_for(10_000);
    let v = evaluate_compact(&goal, &t);
    assert!(v.achieved(1_000), "{v:?}");
}
