//! Experiment E7 — multi-session simple goals ≡ on-line learning
//! (Juba–Vempala, reference [5] of the paper).
//!
//! The mistake-bound shapes: enumeration pays ~N−1, halving pays ~log₂N,
//! and the same shapes appear whether the game is played abstractly (arena)
//! or inside the real simulator with echo-only feedback (bridge).

use goc::goals::transmission::Transform;
use goc::learning::*;
use goc::prelude::*;

fn table_class(n: usize) -> TransformClass {
    TransformClass::new((0..n).map(|i| Transform::Table(9_000 + i as u64)).collect())
}

#[test]
fn mistake_curves_scale_as_n_vs_log_n() {
    for exp in [3u32, 5, 7] {
        let n = 1usize << exp;
        let class = table_class(n);
        let concept = n - 1;

        let mut e = EnumerationPolicy::new(n);
        let re = run_arena(&class, concept, &mut e, (4 * n) as u64, 4, &mut GocRng::seed_from_u64(exp as u64));
        let mut h = HalvingPolicy::new(n);
        let rh = run_arena(&class, concept, &mut h, (4 * n) as u64, 4, &mut GocRng::seed_from_u64(50 + exp as u64));

        assert!(re.converged() && rh.converged());
        // Enumeration: linear in N (random tables almost never collide on
        // 4-byte challenges, so every earlier hypothesis errs once).
        assert!(re.mistakes as usize >= n - 1, "N={n}: {re:?}");
        // Halving: logarithmic.
        assert!(rh.mistakes <= exp as u64 + 1, "N={n}: {rh:?}");
    }
}

#[test]
fn bridge_reproduces_the_same_shapes_with_echo_feedback_only() {
    let n = 16;
    let class = table_class(n);
    let mut e = EnumerationPolicy::new(n);
    let be = run_bridge(&class, n - 1, &mut e, 80, 4, &mut GocRng::seed_from_u64(1));
    let mut h = HalvingPolicy::new(n);
    let bh = run_bridge(&class, n - 1, &mut h, 80, 4, &mut GocRng::seed_from_u64(2));

    assert!(be.converged() && bh.converged());
    assert_eq!(be.mistakes as usize, n - 1, "{be:?}");
    assert!(bh.mistakes <= 5, "{bh:?}");
    assert!(bh.mistakes < be.mistakes);
}

#[test]
fn weighted_majority_tolerates_feedback_noise() {
    let n = 16;
    let class = table_class(n);
    let concept = n - 1;
    let mut wm = WeightedMajorityPolicy::new(n, 0.5);
    let mut rng = GocRng::seed_from_u64(3);
    let mut late_mistakes = 0u64;
    for session in 0..300u64 {
        let challenge = rng.bytes(4);
        let responses: Vec<Vec<u8>> = (0..n).map(|h| class.respond(h, &challenge)).collect();
        let truth = responses[concept].clone();
        if session >= 150 && wm.predict(&responses) != truth {
            late_mistakes += 1;
        } else {
            let _ = wm.predict(&responses);
        }
        let flip = session % 12 == 11; // ~8% adversarial noise
        let correct: Vec<bool> = responses.iter().map(|r| (*r == truth) != flip).collect();
        wm.update(&responses, &correct);
    }
    assert!(late_mistakes <= 25, "late mistakes = {late_mistakes}");
}

#[test]
fn enumeration_policy_matches_theorem1_switch_count() {
    // The session-ized enumeration policy and the in-execution universal
    // user are the same algorithm at different granularity: both try
    // strategies in order and abandon each at its first failure. Check the
    // counts agree: concept at index i ⇒ exactly i mistakes/switches.
    let n = 12;
    let class = table_class(n);
    for concept in [0usize, 4, 11] {
        let mut p = EnumerationPolicy::new(n);
        let r = run_arena(&class, concept, &mut p, 4 * n as u64, 4, &mut GocRng::seed_from_u64(concept as u64));
        assert_eq!(r.mistakes as usize, concept, "concept {concept}: {r:?}");
    }
}
