//! Experiments E3 and E4 — the *price* of universality.
//!
//! E3: password-locked servers force any enumeration-based user to pay a
//! cost that doubles with the password length, while the informed user's
//! cost is flat ("the overhead introduced by the enumeration is essentially
//! necessary", §3).
//!
//! E4: the compact universal user's settling time grows with the index of
//! the viable strategy in the enumeration (quadratically under triangular
//! re-enumeration); the classic Levin schedule grows like 2^i.

use goc::core::enumeration::SliceEnumerator;
use goc::core::sensing::Deadline;
use goc::core::toy;
use goc::core::wrappers::PasswordLocked;
use goc::prelude::*;

/// A user that sends a candidate password, then the magic word.
#[derive(Debug)]
struct PasswordThenSpeak {
    password: Vec<u8>,
    sent_password: bool,
    halt: Option<goc::core::strategy::Halt>,
}

impl PasswordThenSpeak {
    fn new(password: Vec<u8>) -> Self {
        PasswordThenSpeak { password, sent_password: false, halt: None }
    }
}

impl goc::core::strategy::UserStrategy for PasswordThenSpeak {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if input.from_world.as_bytes() == toy::ACK.as_bytes() {
            self.halt = Some(goc::core::strategy::Halt::empty());
            return UserOut::silence();
        }
        if !self.sent_password {
            self.sent_password = true;
            UserOut::to_server(Message::from_bytes(self.password.clone()))
        } else {
            UserOut::to_server(Message::from("open"))
        }
    }

    fn halted(&self) -> Option<goc::core::strategy::Halt> {
        self.halt.clone()
    }
}

fn password_class(k: u32) -> SliceEnumerator {
    let mut class = SliceEnumerator::new(format!("pw(2^{k})"));
    for candidate in 0..(1u64 << k) {
        class.push(move || {
            Box::new(PasswordThenSpeak::new(
                format!("{candidate:0width$b}", width = k as usize).into_bytes(),
            ))
        });
    }
    class
}

fn rounds_to_open(k: u32, informed: bool) -> u64 {
    let goal = toy::MagicWordGoal::new("open");
    let secret = format!("{:0width$b}", (1u64 << k) - 1, width = k as usize);
    let user: BoxedUser = if informed {
        Box::new(PasswordThenSpeak::new(secret.clone().into_bytes()))
    } else {
        Box::new(LevinUniversalUser::round_robin(
            Box::new(password_class(k)),
            Box::new(toy::ack_sensing()),
            6,
        ))
    };
    let mut rng = GocRng::seed_from_u64(k as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(PasswordLocked::new(Box::new(toy::RelayServer::default()), secret)),
        user,
        rng,
    );
    let t = exec.run(1_000_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "k={k} informed={informed}: {v:?}");
    v.rounds
}

#[test]
fn e3_password_cost_doubles_per_bit_for_universal_user() {
    let mut prev = None;
    for k in 2..=8u32 {
        let cost = rounds_to_open(k, false);
        if let Some(prev) = prev {
            assert!(
                cost as f64 >= 1.6 * prev as f64,
                "k={k}: cost {cost} did not ~double from {prev}"
            );
            assert!(
                cost as f64 <= 3.0 * prev as f64,
                "k={k}: cost {cost} grew faster than 2^k from {prev}"
            );
        }
        prev = Some(cost);
    }
}

#[test]
fn e3_informed_user_cost_is_flat() {
    let costs: Vec<u64> = (2..=8u32).map(|k| rounds_to_open(k, true)).collect();
    let max = *costs.iter().max().unwrap();
    let min = *costs.iter().min().unwrap();
    assert!(max <= min + 2, "informed cost should be flat: {costs:?}");
    assert!(max < 10);
}

#[test]
fn e4_compact_settling_grows_with_strategy_index() {
    // Compact magic-word goal: the viable strategy is planted at index i of
    // a class where all other members are useless. Settling round grows
    // with i (quadratically, due to triangular re-enumeration).
    let settle = |i: usize, n: usize| -> u64 {
        let mut class = SliceEnumerator::new("planted");
        for j in 0..n {
            if j == i {
                class.push(|| Box::new(toy::SayThrough::persistent("hi")));
            } else {
                class.push(|| Box::new(goc::core::strategy::SilentUser));
            }
        }
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let user = CompactUniversalUser::new(
            Box::new(class),
            Box::new(Deadline::new(toy::ack_sensing(), 8)),
        );
        let mut rng = GocRng::seed_from_u64(i as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(user),
            rng,
        );
        let t = exec.run_for(60_000);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(6_000), "index {i}: {v:?}");
        v.last_bad_prefix.unwrap_or(0)
    };

    let n = 24;
    let early = settle(1, n);
    let mid = settle(8, n);
    let late = settle(20, n);
    assert!(early < mid, "settling must grow with index: {early} !< {mid}");
    assert!(mid < late, "settling must grow with index: {mid} !< {late}");
}

#[test]
fn e4_levin_cost_grows_exponentially_with_index() {
    let cost = |shift: u8| -> u64 {
        let goal = toy::MagicWordGoal::new("hi");
        let user = LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 16, false)),
            Box::new(toy::ack_sensing()),
            8,
        );
        let mut rng = GocRng::seed_from_u64(shift as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(2_000_000);
        let v = evaluate_finite(&goal, &t);
        assert!(v.achieved);
        v.rounds
    };
    let c2 = cost(2);
    let c6 = cost(6);
    let c10 = cost(10);
    assert!(c6 >= 4 * c2, "Levin overhead must grow ~2^i: {c2} -> {c6}");
    assert!(c10 >= 4 * c6, "Levin overhead must grow ~2^i: {c6} -> {c10}");
}
