//! Robustness of the universal constructions under degraded servers:
//! intermittent, lossy, delayed, byzantine, scrambled-start — composed.
//!
//! The theory's promise is exactly "helpful ⇒ conquered": as long as the
//! wrapped server remains helpful for the class (and sensing stays safe and
//! viable), the universal user must still achieve the goal; and garbage must
//! never induce a false halt.

use goc::core::toy;
use goc::core::wrappers::{Byzantine, Delayed, Intermittent, Lossy, PasswordLocked, ScrambledStart};
use goc::prelude::*;

fn universal() -> LevinUniversalUser {
    LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        16,
    )
}

fn run(server: BoxedServer, horizon: u64, seed: u64) -> goc::core::goal::FiniteVerdict {
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec =
        Execution::new(goal.spawn_world(&mut rng), server, Box::new(universal()), rng);
    let t = exec.run(horizon);
    evaluate_finite(&goal, &t)
}

#[test]
fn intermittent_helpful_server_is_conquered() {
    let server = Intermittent::new(Box::new(toy::RelayServer::with_shift(3)), 4, 4);
    let v = run(Box::new(server), 200_000, 1);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn mostly_asleep_server_is_still_conquered() {
    let server = Intermittent::new(Box::new(toy::RelayServer::with_shift(1)), 1, 9);
    let v = run(Box::new(server), 400_000, 2);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn lossy_delayed_scrambled_composition_is_conquered() {
    let server = ScrambledStart::new(
        Box::new(Delayed::new(
            Box::new(Lossy::new(Box::new(toy::RelayServer::with_shift(2)), 0.2)),
            2,
        )),
        20,
    );
    let v = run(Box::new(server), 400_000, 3);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn byzantine_garbage_never_fools_safe_sensing() {
    // A byzantine wrapper around an UNHELPFUL server: random garbage floods
    // the channels, but ack sensing only fires on the world's genuine ACK,
    // which never comes. For several seeds: no halt, ever.
    for seed in 0..5u64 {
        let server = Byzantine::new(Box::new(goc::core::strategy::SilentServer), 0.8, 8);
        let v = run(Box::new(server), 30_000, 100 + seed);
        assert!(!v.halted, "seed {seed}: garbage induced a halt: {v:?}");
        assert!(!v.achieved);
    }
}

#[test]
fn byzantine_helpful_server_is_eventually_conquered() {
    // 20% corruption of a helpful relay: the word still gets through often
    // enough, and safe sensing only reacts to the genuine ACK.
    let server = Byzantine::new(Box::new(toy::RelayServer::with_shift(4)), 0.2, 8);
    let v = run(Box::new(server), 400_000, 7);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn password_plus_dialect_composition() {
    // The two obstacles combined: find the password AND the dialect. The
    // class is the product {passwords} × {shifts}; cost multiplies, the
    // outcome doesn't change.
    #[derive(Debug)]
    struct PwThenCompensate {
        password: Vec<u8>,
        shift: u8,
        sent_pw: bool,
        halt: Option<goc::core::strategy::Halt>,
    }
    impl goc::core::strategy::UserStrategy for PwThenCompensate {
        fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
            if self.halt.is_some() {
                return UserOut::silence();
            }
            if input.from_world.as_bytes() == toy::ACK.as_bytes() {
                self.halt = Some(goc::core::strategy::Halt::empty());
                return UserOut::silence();
            }
            if !self.sent_pw {
                self.sent_pw = true;
                return UserOut::to_server(Message::from_bytes(self.password.clone()));
            }
            let phrase: Vec<u8> = b"hi".iter().map(|b| b.wrapping_sub(self.shift)).collect();
            UserOut::to_server(Message::from_bytes(phrase))
        }
        fn halted(&self) -> Option<goc::core::strategy::Halt> {
            self.halt.clone()
        }
    }

    let mut class = goc::core::enumeration::SliceEnumerator::new("pw×shift");
    for pw in 0..4u8 {
        for shift in 0..4u8 {
            class.push(move || {
                Box::new(PwThenCompensate {
                    password: vec![b'0' + pw],
                    shift,
                    sent_pw: false,
                    halt: None,
                })
            });
        }
    }
    let universal = LevinUniversalUser::round_robin(
        Box::new(class),
        Box::new(toy::ack_sensing()),
        8,
    );
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(9);
    let server = PasswordLocked::new(Box::new(toy::RelayServer::with_shift(3)), "2");
    let mut exec =
        Execution::new(goal.spawn_world(&mut rng), Box::new(server), Box::new(universal), rng);
    let t = exec.run(100_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "{v:?}");
}
