//! Robustness of the universal constructions on degraded *links* and
//! degraded servers.
//!
//! The theory's promise is exactly "helpful ⇒ conquered": as long as the
//! server remains helpful for the class (and sensing stays safe and viable),
//! the universal user must still achieve the goal; and garbage must never
//! induce a false halt. Since the channel layer landed, link impairments are
//! expressed as [`Channel`]s on the user↔server link — including composed
//! faults (drop+reorder+corrupt) the old server-wrapper approach could not
//! say at all — while genuinely server-side impairments (intermittence,
//! passwords) keep using wrappers.

use goc::core::channel::{Chained, Fault, FaultSchedule, Garbler, Latency, Noisy, Scheduled};
use goc::core::strategy::SilentServer;
use goc::core::toy;
use goc::core::wrappers::{Intermittent, PasswordLocked};
use goc::prelude::*;

fn universal() -> LevinUniversalUser {
    LevinUniversalUser::round_robin(
        Box::new(toy::caesar_class("hi", 8, false)),
        Box::new(toy::ack_sensing()),
        16,
    )
}

/// One universal-user run against `server` with explicit link channels.
fn run_linked(
    user: Box<dyn goc::core::strategy::UserStrategy>,
    server: BoxedServer,
    up: BoxedChannel,
    down: BoxedChannel,
    horizon: u64,
    seed: u64,
) -> goc::core::goal::FiniteVerdict {
    let goal = toy::MagicWordGoal::new("hi");
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec =
        Execution::with_channels(goal.spawn_world(&mut rng), server, user, rng, up, down);
    let t = exec.run(horizon);
    evaluate_finite(&goal, &t)
}

fn run(server: BoxedServer, horizon: u64, seed: u64) -> goc::core::goal::FiniteVerdict {
    run_linked(
        Box::new(universal()),
        server,
        Box::new(Perfect),
        Box::new(Perfect),
        horizon,
        seed,
    )
}

#[test]
fn intermittent_helpful_server_is_conquered() {
    let server = Intermittent::new(Box::new(toy::RelayServer::with_shift(3)), 4, 4);
    let v = run(Box::new(server), 200_000, 1);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn mostly_asleep_server_is_still_conquered() {
    let server = Intermittent::new(Box::new(toy::RelayServer::with_shift(1)), 1, 9);
    let v = run(Box::new(server), 400_000, 2);
    assert!(v.achieved, "{v:?}");
}

#[test]
fn noisy_latent_link_is_conquered() {
    // The old lossy+delayed+scrambled composition, expressed on the link:
    // 20% loss in each direction plus 2 rounds of extra latency upstream.
    let v = run_linked(
        Box::new(universal()),
        Box::new(toy::RelayServer::with_shift(2)),
        Box::new(Chained::new(vec![Box::new(Noisy::drops(0.2)), Box::new(Latency::new(2))])),
        Box::new(Noisy::drops(0.2)),
        400_000,
        3,
    );
    assert!(v.achieved, "{v:?}");
}

#[test]
fn composed_drop_reorder_corrupt_schedule_is_conquered() {
    // A composed deterministic fault barrage the wrapper approach could not
    // express: scheduled drops, reorders and corruptions on BOTH directions,
    // stacked with random loss. The schedule is finite, so helpfulness
    // survives and conquest is mandatory.
    let schedule = FaultSchedule::from_entries(vec![
        (0, Fault::Burst { len: 16 }),
        (20, Fault::Drop),
        (21, Fault::Reorder { depth: 3 }),
        (22, Fault::Corrupt { mask: 0xA5 }),
        (23, Fault::Duplicate),
        (24, Fault::Delay { rounds: 7 }),
        (40, Fault::Reorder { depth: 11 }),
        (41, Fault::Corrupt { mask: 0x0F }),
    ]);
    let v = run_linked(
        Box::new(universal()),
        Box::new(toy::RelayServer::with_shift(5)),
        Box::new(Chained::new(vec![
            Box::new(Scheduled::new(schedule.clone())),
            Box::new(Noisy::drops(0.1)),
        ])),
        Box::new(Scheduled::new(schedule)),
        400_000,
        4,
    );
    assert!(v.achieved, "{v:?}");
}

#[test]
fn garbling_link_never_fools_safe_sensing() {
    // A byzantine DOWN link around an UNHELPFUL server: random garbage
    // floods the user, but ack sensing only fires on the world's genuine
    // ACK, which never comes. For several seeds: no halt, ever.
    for seed in 0..5u64 {
        let v = run_linked(
            Box::new(universal()),
            Box::new(SilentServer),
            Box::new(Perfect),
            Box::new(Garbler::new(0.8, 8)),
            30_000,
            100 + seed,
        );
        assert!(!v.halted, "seed {seed}: garbage induced a halt: {v:?}");
        assert!(!v.achieved);
    }
}

#[test]
fn garbling_link_around_helpful_server_is_eventually_conquered() {
    // 20% garbling of both directions of a helpful relay: the word still
    // gets through often enough, and safe sensing only reacts to the
    // genuine ACK (which travels the untouchable world link).
    let v = run_linked(
        Box::new(universal()),
        Box::new(toy::RelayServer::with_shift(4)),
        Box::new(Garbler::new(0.2, 8)),
        Box::new(Garbler::new(0.2, 8)),
        400_000,
        7,
    );
    assert!(v.achieved, "{v:?}");
}

/// A user that first sends its candidate password, then speaks the
/// compensated magic word; halts on the world's ACK.
#[derive(Debug)]
struct PwThenCompensate {
    password: Vec<u8>,
    shift: u8,
    sent_pw: bool,
    halt: Option<goc::core::strategy::Halt>,
}

impl goc::core::strategy::UserStrategy for PwThenCompensate {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if input.from_world.as_bytes() == toy::ACK.as_bytes() {
            self.halt = Some(goc::core::strategy::Halt::empty());
            return UserOut::silence();
        }
        if !self.sent_pw {
            self.sent_pw = true;
            return UserOut::to_server(Message::from_bytes(self.password.clone()));
        }
        let phrase: Vec<u8> = b"hi".iter().map(|b| b.wrapping_sub(self.shift)).collect();
        UserOut::to_server(Message::from_bytes(phrase))
    }
    fn halted(&self) -> Option<goc::core::strategy::Halt> {
        self.halt.clone()
    }
}

/// The product class {4 passwords} × {4 shifts}, and its universal user.
fn product_universal() -> LevinUniversalUser {
    let mut class = goc::core::enumeration::SliceEnumerator::new("pw×shift");
    for pw in 0..4u8 {
        for shift in 0..4u8 {
            class.push(move || {
                Box::new(PwThenCompensate {
                    password: vec![b'0' + pw],
                    shift,
                    sent_pw: false,
                    halt: None,
                })
            });
        }
    }
    LevinUniversalUser::round_robin(Box::new(class), Box::new(toy::ack_sensing()), 8)
}

#[test]
fn password_plus_dialect_composition() {
    // The two obstacles combined: find the password AND the dialect. The
    // class is the product {passwords} × {shifts}; cost multiplies, the
    // outcome doesn't change. PasswordLocked stays a server wrapper — a
    // channel cannot model server-side state gating.
    let v = run_linked(
        Box::new(product_universal()),
        Box::new(PasswordLocked::new(Box::new(toy::RelayServer::with_shift(3)), "2")),
        Box::new(Perfect),
        Box::new(Perfect),
        100_000,
        9,
    );
    assert!(v.achieved, "{v:?}");
}

#[test]
fn password_composition_survives_a_faulty_link() {
    // The same product class behind a bounded-loss up-link: early attempts
    // may lose the password (or the word) to the channel, but the schedule
    // is finite — the enumeration's bigger-budget retries of the right
    // candidate land after the link recovers, and conquest is mandatory.
    let schedule = FaultSchedule::from_entries(vec![
        (0, Fault::Burst { len: 12 }),
        (15, Fault::Drop),
        (16, Fault::Corrupt { mask: 0x10 }),
        (17, Fault::Reorder { depth: 2 }),
    ]);
    let v = run_linked(
        Box::new(product_universal()),
        Box::new(PasswordLocked::new(Box::new(toy::RelayServer::with_shift(3)), "2")),
        Box::new(Scheduled::new(schedule)),
        Box::new(Noisy::drops(0.1)),
        200_000,
        9,
    );
    assert!(v.achieved, "{v:?}");
}
