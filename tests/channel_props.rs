//! Channel-layer equivalence and determinism properties.
//!
//! The load-bearing claim of the channel refactor is that it changed
//! *nothing* by default: an [`Execution`] built with `Execution::new` (or
//! with two explicit `Perfect` channels) must produce byte-for-byte the
//! transcripts of the pre-channel engine. The reference below is a literal
//! transliteration of that engine's step loop — same rng forks, same
//! message rotation — checked against the real engine over random seeds,
//! servers and users.

use goc::core::channel::{Chained, Fault, FaultSchedule, Latency, Noisy, Scheduled};
use goc::core::msg::{ServerIn, UserIn, WorldIn};
use goc::core::toy;
use goc::core::wrappers::Lossy;
use goc::prelude::*;
use goc_testkit::{check, gens, prop_assert, prop_assert_eq};

/// The pre-channel execution engine, verbatim: three rng forks, six
/// in-flight message slots, direct rotation of outputs into next-round
/// inputs.
fn reference_run<W: WorldStrategy>(
    mut world: W,
    mut server: BoxedServer,
    mut user: BoxedUser,
    rng: GocRng,
    horizon: u64,
) -> (Vec<W::State>, UserView, u64, Option<Halt>) {
    let mut user_rng = rng.fork(1);
    let mut server_rng = rng.fork(2);
    let mut world_rng = rng.fork(3);
    let mut user_to_server = Message::silence();
    let mut user_to_world = Message::silence();
    let mut server_to_user = Message::silence();
    let mut server_to_world = Message::silence();
    let mut world_to_user = Message::silence();
    let mut world_to_server = Message::silence();
    let mut world_states = vec![world.state()];
    let mut view = UserView::new();
    let mut round = 0u64;
    let mut halt = user.halted();
    if halt.is_none() {
        for _ in 0..horizon {
            let user_in = UserIn {
                from_server: server_to_user.clone(),
                from_world: world_to_user.clone(),
            };
            let server_in = ServerIn {
                from_user: user_to_server.clone(),
                from_world: world_to_server.clone(),
            };
            let world_in = WorldIn {
                from_user: user_to_world.clone(),
                from_server: server_to_world.clone(),
            };
            let user_out = {
                let mut ctx = StepCtx::new(round, &mut user_rng);
                user.step(&mut ctx, &user_in)
            };
            let server_out = {
                let mut ctx = StepCtx::new(round, &mut server_rng);
                server.step(&mut ctx, &server_in)
            };
            let world_out = {
                let mut ctx = StepCtx::new(round, &mut world_rng);
                world.step(&mut ctx, &world_in)
            };
            view.push(ViewEvent { round, received: user_in, sent: user_out.clone() });
            world_states.push(world.state());
            user_to_server = user_out.to_server;
            user_to_world = user_out.to_world;
            server_to_user = server_out.to_user;
            server_to_world = server_out.to_world;
            world_to_user = world_out.to_user;
            world_to_server = world_out.to_server;
            round += 1;
            if let Some(h) = user.halted() {
                halt = Some(h);
                break;
            }
        }
    }
    (world_states, view, round, halt)
}

fn server_for(kind: u8, shift: u8) -> BoxedServer {
    match kind % 3 {
        0 => Box::new(toy::RelayServer::with_shift(shift)),
        // Lossy draws from the server rng stream: exercises rng alignment.
        1 => Box::new(Lossy::new(Box::new(toy::RelayServer::with_shift(shift)), 0.3)),
        _ => Box::new(SilentServer),
    }
}

fn user_for(kind: u8, shift: u8) -> BoxedUser {
    match kind % 2 {
        0 => Box::new(toy::SayThrough::compensating("hi", shift)),
        _ => Box::new(LevinUniversalUser::round_robin(
            Box::new(toy::caesar_class("hi", 8, false)),
            Box::new(toy::ack_sensing()),
            16,
        )),
    }
}

use goc::core::strategy::SilentServer;

#[test]
fn perfect_channels_are_bit_identical_to_the_prechannel_engine() {
    check(
        "perfect_channels_are_bit_identical_to_the_prechannel_engine",
        gens::tuple3(gens::any_u64(), gens::tuple2(gens::any_u8(), gens::u8_in(0, 8)), gens::u8_in(0, 2)),
        |&(seed, (server_kind, shift), user_kind)| {
            let goal = toy::MagicWordGoal::new("hi");
            let horizon = 400;

            let mut rng = GocRng::seed_from_u64(seed);
            let (ref_states, ref_view, ref_rounds, ref_halt) = reference_run(
                goal.spawn_world(&mut rng),
                server_for(server_kind, shift),
                user_for(user_kind, shift),
                rng,
                horizon,
            );

            let mut rng = GocRng::seed_from_u64(seed);
            let t = Execution::new(
                goal.spawn_world(&mut rng),
                server_for(server_kind, shift),
                user_for(user_kind, shift),
                rng,
            )
            .run(horizon);

            prop_assert_eq!(&t.world_states, &ref_states);
            prop_assert_eq!(&t.view, &ref_view);
            prop_assert_eq!(t.rounds, ref_rounds);
            prop_assert_eq!(t.halt().cloned(), ref_halt);

            // Explicit Perfect channels are the same constructor.
            let mut rng = GocRng::seed_from_u64(seed);
            let t2 = Execution::with_channels(
                goal.spawn_world(&mut rng),
                server_for(server_kind, shift),
                user_for(user_kind, shift),
                rng,
                Box::new(Perfect),
                Box::new(Perfect),
            )
            .run(horizon);
            prop_assert_eq!(&t2.view, &ref_view);
            prop_assert_eq!(&t2.world_states, &ref_states);
            Ok(())
        },
    );
}

#[test]
fn empty_schedule_and_zero_noise_channels_are_transparent() {
    check(
        "empty_schedule_and_zero_noise_channels_are_transparent",
        gens::tuple2(gens::any_u64(), gens::u8_in(0, 8)),
        |&(seed, shift)| {
            let goal = toy::MagicWordGoal::new("hi");
            let build = |up: BoxedChannel, down: BoxedChannel| {
                let mut rng = GocRng::seed_from_u64(seed);
                Execution::with_channels(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(shift)),
                    user_for(1, shift),
                    rng,
                    up,
                    down,
                )
                .run(300)
            };
            let perfect = build(Box::new(Perfect), Box::new(Perfect));
            let scheduled = build(
                Box::new(Scheduled::new(FaultSchedule::empty())),
                Box::new(Scheduled::new(FaultSchedule::empty())),
            );
            prop_assert_eq!(&perfect.view, &scheduled.view);
            prop_assert_eq!(&perfect.world_states, &scheduled.world_states);
            // Latency(0), Noisy(0, 0) and an empty chain are transparent
            // too; Noisy consumes rng from the channel's own fork only, so
            // party streams stay aligned.
            let neutral = build(
                Box::new(Chained::new(vec![Box::new(Latency::new(0)), Box::new(Noisy::new(0.0, 0.0))])),
                Box::new(Chained::new(Vec::new())),
            );
            prop_assert_eq!(&perfect.view, &neutral.view);
            prop_assert_eq!(&perfect.world_states, &neutral.world_states);
            Ok(())
        },
    );
}

#[test]
fn scheduled_fault_executions_are_seed_deterministic() {
    check(
        "scheduled_fault_executions_are_seed_deterministic",
        gens::tuple3(
            gens::any_u64(),
            gens::fault_schedule(200, 8, 16),
            gens::u8_in(0, 8),
        ),
        |(seed, schedule, shift)| {
            let run = || {
                let goal = toy::MagicWordGoal::new("hi");
                let mut rng = GocRng::seed_from_u64(*seed);
                Execution::with_channels(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(*shift)),
                    user_for(1, *shift),
                    rng,
                    Box::new(Scheduled::new(schedule.clone())),
                    Box::new(Chained::new(vec![
                        Box::new(Scheduled::new(schedule.clone())),
                        Box::new(Noisy::new(0.2, 0.2)),
                    ])),
                )
                .run(500)
            };
            let a = run();
            let b = run();
            prop_assert_eq!(&a.view, &b.view);
            prop_assert_eq!(&a.world_states, &b.world_states);
            prop_assert_eq!(a.rounds, b.rounds);
            Ok(())
        },
    );
}

#[test]
fn faults_scheduled_beyond_the_horizon_are_unobservable() {
    // Metamorphic: a schedule whose every fault lies past the horizon can
    // never influence the transcript.
    check(
        "faults_scheduled_beyond_the_horizon_are_unobservable",
        gens::tuple3(gens::any_u64(), gens::fault_schedule(100, 6, 8), gens::u8_in(0, 8)),
        |(seed, schedule, shift)| {
            let horizon = 250u64;
            let shifted = FaultSchedule::from_entries(
                schedule.entries().iter().map(|(r, f)| (r + horizon, f.clone())),
            );
            let goal = toy::MagicWordGoal::new("hi");
            let build = |up: BoxedChannel| {
                let mut rng = GocRng::seed_from_u64(*seed);
                Execution::with_channels(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(*shift)),
                    user_for(0, *shift),
                    rng,
                    up,
                    Box::new(Perfect),
                )
                .run(horizon)
            };
            let perfect = build(Box::new(Perfect));
            let late = build(Box::new(Scheduled::new(shifted)));
            prop_assert_eq!(&perfect.view, &late.view);
            prop_assert_eq!(&perfect.world_states, &late.world_states);
            Ok(())
        },
    );
}

#[test]
fn corrupting_the_whole_link_only_delays_conquest_never_falsifies_it() {
    // Metamorphic safety: whatever finite schedule hits the link, a halt
    // still implies genuine achievement (the ACK arrives from the world,
    // which no user↔server channel can touch).
    check(
        "corrupting_the_whole_link_only_delays_conquest_never_falsifies_it",
        gens::tuple2(gens::any_u64(), gens::adversarial_prefix_schedule(40, 10)),
        |(seed, schedule)| {
            let goal = toy::MagicWordGoal::new("hi");
            let mut rng = GocRng::seed_from_u64(*seed);
            let t = Execution::with_channels(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(3)),
                user_for(1, 3),
                rng,
                Box::new(Scheduled::new(schedule.clone())),
                Box::new(Scheduled::new(schedule.clone())),
            )
            .run(60_000 + schedule.quiet_after());
            let v = evaluate_finite(&goal, &t);
            prop_assert!(
                !v.halted || v.achieved,
                "false halt under schedule {:?}",
                schedule
            );
            prop_assert!(v.achieved, "bounded-loss prefix defeated a helpful relay: {:?}", schedule);
            Ok(())
        },
    );
}

#[test]
fn single_fault_kinds_behave_as_documented_end_to_end() {
    // A message sent at round r through Fault::Delay{d} arrives exactly d
    // rounds later than through Perfect; Drop never arrives; Corrupt
    // arrives changed. Driven through a real execution, not the unit layer.
    let goal = toy::MagicWordGoal::new("hi");
    let run = |up: BoxedChannel| {
        let mut rng = GocRng::seed_from_u64(77);
        let t = Execution::with_channels(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(0)),
            Box::new(toy::SayThrough::persistent("hi")),
            rng,
            up,
            Box::new(Perfect),
        )
        .run_for(30);
        t.world_states.last().unwrap().heard_count
    };
    let baseline = run(Box::new(Perfect));
    assert!(baseline > 0);
    // Dropping every round the user speaks prevents any hearing.
    let all_drops = FaultSchedule::from_entries((0..30).map(|r| (r, Fault::Drop)));
    assert_eq!(run(Box::new(Scheduled::new(all_drops))), 0);
    // A pure delay of 5 loses at most 5 hearings relative to baseline.
    let delayed = FaultSchedule::from_entries((0..30).map(|r| (r, Fault::Delay { rounds: 5 })));
    let heard_delayed = run(Box::new(Scheduled::new(delayed)));
    assert!(heard_delayed >= baseline.saturating_sub(5), "{heard_delayed} vs {baseline}");
    // Corrupting every round garbles the word so the world never hears it.
    let corrupted = FaultSchedule::from_entries((0..30).map(|r| (r, Fault::Corrupt { mask: 0x01 })));
    assert_eq!(run(Box::new(Scheduled::new(corrupted))), 0);
}
