//! Determinism of the parallel trial harness: for any seed and any worker
//! count, `finite_success` / `compact_success` must produce **byte-identical**
//! `SuccessReport`s (successes, trials, and the rounds vector in trial
//! order) — the property that makes `goc_core::par` a pure speedup.
//!
//! Thread counts are pinned with `par::with_thread_count`, which overrides
//! `GOC_THREADS` per test thread, so this property holds regardless of the
//! environment ci.sh runs the suite under.

use goc_core::harness::{compact_success, finite_success, SuccessReport};
use goc_core::par::with_thread_count;
use goc_core::sensing::Deadline;
use goc_core::strategy::{BoxedServer, BoxedUser};
use goc_core::toy;
use goc_core::universal::{CompactUniversalUser, LevinUniversalUser};
use goc_testkit::{check, gens, prop_assert_eq};

fn finite_report(seed: u64, trials: u32, threads: usize) -> SuccessReport {
    let goal = toy::MagicWordGoal::new("hi");
    let server = || Box::new(toy::RelayServer::with_shift(2)) as BoxedServer;
    // A universal user per trial: exercises the Levin lookahead under the
    // parallel harness, not just plain strategies.
    let user = || {
        Box::new(LevinUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, false)),
            Box::new(toy::ack_sensing()),
            8,
        )) as BoxedUser
    };
    with_thread_count(threads, || {
        finite_success(&goal, &server, &user, trials, 20_000, seed)
    })
}

fn compact_report(seed: u64, trials: u32, threads: usize) -> SuccessReport {
    let goal = toy::CompactMagicWordGoal::new("hi", 16);
    let server = || Box::new(toy::RelayServer::with_shift(3)) as BoxedServer;
    let user = || {
        Box::new(CompactUniversalUser::new(
            Box::new(toy::caesar_class("hi", 8, true)),
            Box::new(Deadline::new(toy::ack_sensing(), 8)),
        )) as BoxedUser
    };
    with_thread_count(threads, || {
        compact_success(&goal, &server, &user, trials, 4_000, 400, seed)
    })
}

#[test]
fn finite_success_is_thread_count_invariant() {
    check(
        "finite_success_is_thread_count_invariant",
        gens::tuple2(gens::any_u64(), gens::u64_in(1, 6)),
        |&(seed, trials)| {
            let sequential = finite_report(seed, trials as u32, 1);
            let parallel = finite_report(seed, trials as u32, 4);
            prop_assert_eq!(&sequential, &parallel, "seed {seed}");
            prop_assert_eq!(sequential.trials, trials as u32);
            Ok(())
        },
    );
}

#[test]
fn compact_success_is_thread_count_invariant() {
    check(
        "compact_success_is_thread_count_invariant",
        gens::tuple2(gens::any_u64(), gens::u64_in(1, 6)),
        |&(seed, trials)| {
            let sequential = compact_report(seed, trials as u32, 1);
            let parallel = compact_report(seed, trials as u32, 4);
            prop_assert_eq!(&sequential, &parallel, "seed {seed}");
            Ok(())
        },
    );
}

/// Thread counts beyond the trial count (and odd counts that don't divide
/// it) change nothing either.
#[test]
fn oversubscribed_and_odd_thread_counts_match() {
    let baseline = finite_report(0xfeed, 5, 1);
    for threads in [2usize, 3, 7, 16] {
        assert_eq!(finite_report(0xfeed, 5, threads), baseline, "threads {threads}");
    }
}
