//! Cross-crate coverage for the convenience harness and the VM assembler:
//! a hand-assembled VM program drives a real printer driver, and the
//! one-call harness reproduces the headline success rates.

use goc::core::harness::{compact_success, finite_success};
use goc::core::sensing::Deadline;
use goc::core::toy;
use goc::goals::printing::*;
use goc::prelude::*;
use goc::vm::asm::assemble;
use goc::vm::VmUser;

#[test]
fn hand_assembled_program_prints_through_a_real_driver() {
    // Driver dialect: opcode 0x10, identity payload. The program frames a
    // job submission every round: [0x10]["ok"].
    let goal = PrintGoal::new("ok");
    let program = assemble(
        "; submit print job in dialect (0x10, Identity)
         emit.a 0x10
         emit.a 'o'
         emit.a 'k'
         end",
    )
    .expect("valid assembly");

    let mut rng = GocRng::seed_from_u64(1);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(DriverServer::new(Dialect::new(0x10, Encoding::Identity))),
        Box::new(VmUser::new(program)),
        rng,
    );
    let t = exec.run_for(20); // VM user never halts; judge the world log
    assert!(t.world_states.last().unwrap().has_printed(b"ok"));
}

#[test]
fn assembler_rejects_what_the_disassembler_never_prints() {
    assert!(assemble("launch missiles").is_err());
    assert!(assemble("emit.a r8").is_err()); // no such register
}

#[test]
fn harness_reproduces_theorem1_success_rates() {
    // Finite: Levin universal vs 3 seeds × 2 servers, 100% success.
    let goal = toy::MagicWordGoal::new("hi");
    for shift in [1u8, 6] {
        let report = finite_success(
            &goal,
            &move || Box::new(toy::RelayServer::with_shift(shift)),
            &|| {
                Box::new(LevinUniversalUser::new(
                    Box::new(toy::caesar_class("hi", 8, false)),
                    Box::new(toy::ack_sensing()),
                    8,
                ))
            },
            3,
            50_000,
            13,
        );
        assert!(report.always(), "shift {shift}: {report:?}");
        // Rounds must reflect the Levin position of the right candidate.
        assert!(report.max_rounds().unwrap() < 20_000);
    }

    // Compact: switch-on-negative universal, 100% settle rate.
    let cgoal = toy::CompactMagicWordGoal::new("hi", 16);
    let report = compact_success(
        &cgoal,
        &|| Box::new(toy::RelayServer::with_shift(3)),
        &|| {
            Box::new(CompactUniversalUser::new(
                Box::new(toy::caesar_class("hi", 8, true)),
                Box::new(Deadline::new(toy::ack_sensing(), 8)),
            ))
        },
        3,
        5_000,
        500,
        17,
    );
    assert!(report.always(), "{report:?}");
}

#[test]
fn harness_reports_zero_rate_for_unhelpful_servers() {
    let goal = toy::MagicWordGoal::new("hi");
    let report = finite_success(
        &goal,
        &|| Box::new(goc::core::strategy::SilentServer),
        &|| {
            Box::new(LevinUniversalUser::new(
                Box::new(toy::caesar_class("hi", 4, false)),
                Box::new(toy::ack_sensing()),
                8,
            ))
        },
        2,
        5_000,
        19,
    );
    assert_eq!(report.rate(), 0.0);
}
