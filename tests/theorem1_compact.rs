//! Experiment E1 — Theorem 1, compact case.
//!
//! For the compact printing goal and the dialect server class, safe+viable
//! sensing exists (tray feedback + deadline), and the switch-on-negative
//! universal user achieves the goal with **every** server in the class, from
//! arbitrary start states, for every sampled seed.

use goc::core::helpful::TrialConfig;
use goc::core::sensing::{Deadline, Sensing};
use goc::core::validate;
use goc::core::wrappers::ScrambledStart;
use goc::goals::printing::*;
use goc::prelude::*;

const DOC: &str = "manifesto";

fn dialects() -> Vec<Dialect> {
    Dialect::class(&[0x11, 0x22, 0x33], &Encoding::family(&[0x5a], &[3]))
}

fn universal(dialects: &[Dialect]) -> CompactUniversalUser {
    CompactUniversalUser::new(
        Box::new(dialect_class(DOC, dialects, true)),
        Box::new(Deadline::new(tray_sensing(DOC), 24)),
    )
}

#[test]
fn universal_user_succeeds_with_every_dialect_server() {
    let dialects = dialects();
    let goal = CompactPrintGoal::new(DOC, 64);
    for (i, dialect) in dialects.iter().enumerate() {
        for seed in 0..3u64 {
            let mut rng = GocRng::seed_from_u64(1_000 * seed + i as u64);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(DriverServer::new(dialect.clone())),
                Box::new(universal(&dialects)),
                rng,
            );
            let t = exec.run_for(30_000);
            let v = evaluate_compact(&goal, &t);
            assert!(
                v.achieved(3_000),
                "dialect {i}, seed {seed}: {v:?} (Theorem 1 violated)"
            );
        }
    }
}

#[test]
fn universal_user_succeeds_from_scrambled_server_states() {
    // The theorem quantifies over arbitrary server start states.
    let dialects = dialects();
    let goal = CompactPrintGoal::new(DOC, 64);
    let dialect = dialects[4].clone();
    for warmup in [1u32, 10, 50] {
        let mut rng = GocRng::seed_from_u64(warmup as u64);
        let server = ScrambledStart::new(
            Box::new(DriverServer::new(dialect.clone())),
            warmup,
        );
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(server),
            Box::new(universal(&dialects)),
            rng,
        );
        let t = exec.run_for(30_000);
        let v = evaluate_compact(&goal, &t);
        assert!(v.achieved(3_000), "warmup {warmup}: {v:?}");
    }
}

#[test]
fn sensing_hypotheses_hold_for_this_goal_and_class() {
    let dialects = dialects();
    let goal = CompactPrintGoal::new(DOC, 64);
    let class = dialect_class(DOC, &dialects, true);
    let cfg = TrialConfig { trials: 2, horizon: 800, seed: 5, window: 100 };
    let mk = |d: Dialect| move || Box::new(DriverServer::new(d.clone())) as BoxedServer;
    let s0 = mk(dialects[0].clone());
    let s5 = mk(dialects[5].clone());
    let servers: Vec<validate::MakeServer<'_>> = vec![&s0, &s5];
    let sensing = || Box::new(Deadline::new(tray_sensing(DOC), 24)) as Box<dyn Sensing>;

    let safety = validate::compact_safety(&goal, &servers, &class, &sensing, &cfg);
    assert!(safety.holds(), "compact safety violated: {:?}", safety.violations);

    let viability = validate::compact_viability(&goal, &servers, &class, &sensing, &cfg);
    assert!(viability.holds(), "compact viability violated: {:?}", viability.violations);
}

#[test]
fn every_dialect_server_is_helpful() {
    // Precondition of the theorem-experiment: the class only contains
    // helpful servers.
    let dialects = dialects();
    let goal = CompactPrintGoal::new(DOC, 64);
    let class = dialect_class(DOC, &dialects, true);
    let cfg = TrialConfig { trials: 2, horizon: 800, seed: 6, window: 100 };
    for (i, dialect) in dialects.iter().enumerate() {
        let d = dialect.clone();
        let report = goc::core::helpful::compact_helpfulness(
            &goal,
            &move || Box::new(DriverServer::new(d.clone())) as BoxedServer,
            &class,
            &cfg,
        );
        assert!(report.helpful, "dialect {i} not helpful");
        assert_eq!(report.witness, Some(i), "witness should be the matching user");
    }
}

#[test]
fn goal_is_forgiving() {
    // Precondition: every finite history extends to success.
    let dialects = dialects();
    let goal = CompactPrintGoal::new(DOC, 64);
    let d = dialects[0].clone();
    let d2 = d.clone();
    let report = goc::core::helpful::compact_forgiving(
        &goal,
        &move || Box::new(PrintingUser::persistent(DOC, d.clone())) as BoxedUser,
        &move || Box::new(DriverServer::new(d2.clone())) as BoxedServer,
        200,
        &TrialConfig { trials: 6, horizon: 1_500, seed: 7, window: 150 },
    );
    assert!(report.forgiving(), "{report:?}");
}
