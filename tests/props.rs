//! Cross-crate property tests: invariants that must hold for any seed,
//! any class member, any parameter draw. Checked by the in-tree
//! `goc-testkit` harness — seeded, shrinking, zero external dependencies.

use goc::core::toy;
use goc::goals::codec::Encoding;
use goc::goals::printing::{Dialect, DriverServer, PrintGoal};
use goc::goals::transmission::Transform;
use goc::prelude::*;
use goc_testkit::{check, gens, prop_assert, prop_assert_eq, prop_assume};

/// Executions are deterministic functions of the seed.
#[test]
fn executions_are_seed_deterministic() {
    check(
        "executions_are_seed_deterministic",
        gens::tuple2(gens::any_u64(), gens::any_u8()),
        |&(seed, shift)| {
            let run = || {
                let goal = toy::MagicWordGoal::new("hi");
                let mut rng = GocRng::seed_from_u64(seed);
                let mut exec = Execution::new(
                    goal.spawn_world(&mut rng),
                    Box::new(toy::RelayServer::with_shift(shift)),
                    Box::new(toy::SayThrough::compensating("hi", shift)),
                    rng,
                );
                exec.run(64)
            };
            let (a, b) = (run(), run());
            prop_assert_eq!(a.rounds, b.rounds);
            prop_assert_eq!(a.view, b.view);
            prop_assert_eq!(a.stop, b.stop);
            Ok(())
        },
    );
}

/// The compensating user beats its matching Caesar server for EVERY
/// shift — the viability witness exists across the whole class.
#[test]
fn compensating_user_is_universal_witness() {
    check(
        "compensating_user_is_universal_witness",
        gens::tuple2(gens::any_u8(), gens::any_u64()),
        |&(shift, seed)| {
            let goal = toy::MagicWordGoal::new("hello");
            let mut rng = GocRng::seed_from_u64(seed);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(shift)),
                Box::new(toy::SayThrough::compensating("hello", shift)),
                rng,
            );
            let t = exec.run(32);
            prop_assert!(evaluate_finite(&goal, &t).achieved);
            Ok(())
        },
    );
}

/// Dialect framing round-trips for every opcode/encoding/document.
#[test]
fn dialect_frame_parse_roundtrip() {
    check(
        "dialect_frame_parse_roundtrip",
        gens::tuple3(gens::any_u8(), gens::any_u8(), gens::bytes(1, 40)),
        |(opcode, mask, doc)| {
            for enc in [
                Encoding::Identity,
                Encoding::Reverse,
                Encoding::Xor(*mask),
                Encoding::Rot(*mask),
            ] {
                let d = Dialect::new(*opcode, enc);
                let wire = d.frame_job(doc);
                prop_assert_eq!(d.parse_job(&wire), Some(doc.clone()));
            }
            Ok(())
        },
    );
}

/// Transforms invert exactly on every payload.
#[test]
fn transforms_invert() {
    check(
        "transforms_invert",
        gens::tuple2(gens::any_u64(), gens::bytes(0, 64)),
        |(seed, payload)| {
            for t in [
                Transform::Table(*seed),
                Transform::Enc(Encoding::Xor(*seed as u8)),
                Transform::Enc(Encoding::Rot(*seed as u8)),
            ] {
                prop_assert_eq!(t.invert(&t.apply(payload)), payload.clone());
            }
            Ok(())
        },
    );
}

/// Compact verdicts are monotone: extending a flawless run by flawless
/// rounds never destroys achievement.
#[test]
fn compact_achievement_is_stable_under_longer_horizons() {
    check(
        "compact_achievement_is_stable_under_longer_horizons",
        gens::tuple2(gens::any_u64(), gens::u64_in(0, 2_000)),
        |&(seed, extra)| {
            let goal = toy::CompactMagicWordGoal::new("hi", 16);
            let mut rng = GocRng::seed_from_u64(seed);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::default()),
                Box::new(toy::SayThrough::persistent("hi")),
                rng,
            );
            let t1 = exec.run_for(500);
            let v1 = evaluate_compact(&goal, &t1);
            let t2 = exec.run_for(extra);
            let v2 = evaluate_compact(&goal, &t2);
            prop_assert!(v1.achieved(100));
            prop_assert!(v2.achieved(100));
            prop_assert_eq!(v1.bad_prefixes, v2.bad_prefixes);
            Ok(())
        },
    );
}

/// The finite referee never accepts a run in which the printer did not
/// print the document (soundness of the printing referee).
#[test]
fn printing_referee_is_sound() {
    check(
        "printing_referee_is_sound",
        gens::tuple2(gens::any_u64(), gens::bytes(1, 10)),
        |(seed, junk_doc)| {
            prop_assume!(junk_doc.as_slice() != b"target");
            let goal = PrintGoal::new("target");
            let dialect = Dialect::new(0x01, Encoding::Identity);
            let mut rng = GocRng::seed_from_u64(*seed);
            // A user printing the WRONG document.
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(DriverServer::new(dialect.clone())),
                Box::new(goc::goals::printing::PrintingUser::persistent(
                    junk_doc.clone(),
                    dialect,
                )),
                rng,
            );
            let t = exec.run_for(100);
            prop_assert!(!evaluate_finite(&goal, &t).achieved);
            Ok(())
        },
    );
}

/// GocRng::below is uniform enough and in range for arbitrary bounds.
#[test]
fn rng_below_in_range() {
    check(
        "rng_below_in_range",
        gens::tuple2(gens::any_u64(), gens::u64_in(1, 1_000_000)),
        |&(seed, bound)| {
            let mut rng = GocRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(bound) < bound);
            }
            Ok(())
        },
    );
}
