//! Cross-crate property tests: invariants that must hold for any seed,
//! any class member, any parameter draw.

use goc::core::toy;
use goc::goals::codec::Encoding;
use goc::goals::printing::{Dialect, DriverServer, PrintGoal};
use goc::goals::transmission::Transform;
use goc::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Executions are deterministic functions of the seed.
    #[test]
    fn executions_are_seed_deterministic(seed in any::<u64>(), shift in any::<u8>()) {
        let run = || {
            let goal = toy::MagicWordGoal::new("hi");
            let mut rng = GocRng::seed_from_u64(seed);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(shift)),
                Box::new(toy::SayThrough::compensating("hi", shift)),
                rng,
            );
            exec.run(64)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.view, b.view);
        prop_assert_eq!(a.stop, b.stop);
    }

    /// The compensating user beats its matching Caesar server for EVERY
    /// shift — the viability witness exists across the whole class.
    #[test]
    fn compensating_user_is_universal_witness(shift in any::<u8>(), seed in any::<u64>()) {
        let goal = toy::MagicWordGoal::new("hello");
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(toy::SayThrough::compensating("hello", shift)),
            rng,
        );
        let t = exec.run(32);
        prop_assert!(evaluate_finite(&goal, &t).achieved);
    }

    /// Dialect framing round-trips for every opcode/encoding/document.
    #[test]
    fn dialect_frame_parse_roundtrip(
        opcode in any::<u8>(),
        mask in any::<u8>(),
        doc in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        for enc in [Encoding::Identity, Encoding::Reverse, Encoding::Xor(mask), Encoding::Rot(mask)] {
            let d = Dialect::new(opcode, enc);
            let wire = d.frame_job(&doc);
            prop_assert_eq!(d.parse_job(&wire), Some(doc.clone()));
        }
    }

    /// Transforms invert exactly on every payload.
    #[test]
    fn transforms_invert(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        for t in [Transform::Table(seed), Transform::Enc(Encoding::Xor(seed as u8)), Transform::Enc(Encoding::Rot(seed as u8))] {
            prop_assert_eq!(t.invert(&t.apply(&payload)), payload.clone());
        }
    }

    /// Compact verdicts are monotone: extending a flawless run by flawless
    /// rounds never destroys achievement.
    #[test]
    fn compact_achievement_is_stable_under_longer_horizons(
        seed in any::<u64>(),
        extra in 0u64..2_000,
    ) {
        let goal = toy::CompactMagicWordGoal::new("hi", 16);
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::default()),
            Box::new(toy::SayThrough::persistent("hi")),
            rng,
        );
        let t1 = exec.run_for(500);
        let v1 = evaluate_compact(&goal, &t1);
        let t2 = exec.run_for(extra);
        let v2 = evaluate_compact(&goal, &t2);
        prop_assert!(v1.achieved(100));
        prop_assert!(v2.achieved(100));
        prop_assert_eq!(v1.bad_prefixes, v2.bad_prefixes);
    }

    /// The finite referee never accepts a run in which the printer did not
    /// print the document (soundness of the printing referee).
    #[test]
    fn printing_referee_is_sound(seed in any::<u64>(), junk_doc in proptest::collection::vec(any::<u8>(), 1..10)) {
        prop_assume!(junk_doc != b"target".to_vec());
        let goal = PrintGoal::new("target");
        let dialect = Dialect::new(0x01, Encoding::Identity);
        let mut rng = GocRng::seed_from_u64(seed);
        // A user printing the WRONG document.
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(DriverServer::new(dialect.clone())),
            Box::new(goc::goals::printing::PrintingUser::persistent(junk_doc, dialect)),
            rng,
        );
        let t = exec.run_for(100);
        prop_assert!(!evaluate_finite(&goal, &t).achieved);
    }

    /// GocRng::below is uniform enough and in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = GocRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
