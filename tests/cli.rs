//! End-to-end tests of the `goc` command-line binary.

use std::process::{Command, Stdio};

fn goc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("binary runs")
}

#[test]
fn help_and_list() {
    let out = goc(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = goc(&["list"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("printing"));
}

#[test]
fn demo_magic_achieves_goal() {
    let out = goc(&["demo", "magic", "--seed", "3", "--horizon", "500000"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GOAL ACHIEVED"));
}

#[test]
fn demo_rejects_unknown_scenario() {
    let out = goc(&["demo", "frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}

#[test]
fn unknown_command_fails_with_help() {
    let out = goc(&["bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn trace_renders_transcript() {
    let out = goc(&["trace", "magic", "--seed", "5", "--limit", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("execution:"), "{text}");
    assert!(text.contains("stats:"), "{text}");
}

#[test]
fn vm_asm_and_run_via_stdin() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(["vm-run", "-", "--rounds", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"emit.a 'x'\nend\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("round 0"), "{text}");
    assert!(text.contains('x'), "{text}");
}

#[test]
fn vm_asm_reports_errors_with_line_numbers() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_goc"))
        .args(["vm-asm", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child.stdin.as_mut().unwrap().write_all(b"emit.a 'x'\nzap r0\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
}
