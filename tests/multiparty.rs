//! The multi-party reduction (paper footnote 1), exercised across goals:
//! composites of printers and oracles, deep and shallow helpful members.

use goc::core::multi::{addressed_class, CompositeServer};
use goc::core::strategy::{EchoServer, SilentServer};
use goc::goals::codec::Encoding;
use goc::goals::computation as comp;
use goc::goals::printing as print;
use goc::prelude::*;
use std::sync::Arc;

#[test]
fn printing_through_a_composite_of_mixed_servers() {
    let dialects =
        print::Dialect::class(&[0x10, 0x20], &[Encoding::Identity, Encoding::Xor(0x44)]);
    let goal = print::PrintGoal::new("doc");
    // Helpful member at index 3, speaking dialect 2.
    let composite = || -> BoxedServer {
        Box::new(CompositeServer::new(vec![
            Box::new(SilentServer),
            Box::new(EchoServer),
            Box::new(SilentServer),
            Box::new(print::DriverServer::new(dialects[2].clone())),
        ]))
    };
    let class = addressed_class(Box::new(print::dialect_class("doc", &dialects, false)), 4);
    for seed in 0..3u64 {
        let universal = LevinUniversalUser::round_robin(
            Box::new(addressed_class(
                Box::new(print::dialect_class("doc", &dialects, false)),
                4,
            )),
            Box::new(print::tray_sensing("doc")),
            8,
        );
        let mut rng = GocRng::seed_from_u64(seed);
        let mut exec =
            Execution::new(goal.spawn_world(&mut rng), composite(), Box::new(universal), rng);
        let t = exec.run(200_000);
        assert!(evaluate_finite(&goal, &t).achieved, "seed {seed}");
    }
    // Class arithmetic sanity.
    use goc::core::enumeration::StrategyEnumerator;
    assert_eq!(class.len(), Some(16));
}

#[test]
fn delegation_through_a_composite_with_one_oracle() {
    let puzzle: Arc<dyn comp::Puzzle + Send + Sync> = Arc::new(comp::ModSquareRoot::new(10007));
    let protocols = comp::QueryProtocol::class(b"?", &[Encoding::Identity, Encoding::Reverse]);
    let goal = comp::DelegationGoal::new(puzzle.clone());
    // The oracle is member 1 of 3 and speaks protocol 1.
    let composite = || -> BoxedServer {
        Box::new(CompositeServer::new(vec![
            Box::new(SilentServer),
            Box::new(comp::OracleServer::new(protocols[1])),
            Box::new(EchoServer),
        ]))
    };
    let universal = LevinUniversalUser::round_robin(
        Box::new(addressed_class(
            Box::new(comp::protocol_class(&protocols, puzzle.clone())),
            3,
        )),
        Box::new(comp::confirmation_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(5);
    let mut exec =
        Execution::new(goal.spawn_world(&mut rng), composite(), Box::new(universal), rng);
    let t = exec.run(200_000);
    assert!(evaluate_finite(&goal, &t).achieved);
}

#[test]
fn composite_of_only_unhelpful_members_stays_safe() {
    let dialects = print::Dialect::class(&[0x10], &[Encoding::Identity]);
    let goal = print::PrintGoal::new("doc");
    let composite = CompositeServer::new(vec![
        Box::new(SilentServer),
        Box::new(EchoServer),
    ]);
    let universal = LevinUniversalUser::round_robin(
        Box::new(addressed_class(
            Box::new(print::dialect_class("doc", &dialects, false)),
            2,
        )),
        Box::new(print::tray_sensing("doc")),
        8,
    );
    let mut rng = GocRng::seed_from_u64(6);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(composite),
        Box::new(universal),
        rng,
    );
    let t = exec.run(20_000);
    let v = evaluate_finite(&goal, &t);
    assert!(!v.halted && !v.achieved);
}
