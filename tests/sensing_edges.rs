//! Edge-case coverage for the sensing combinators.
//!
//! The universal constructions lean on these combinators at their extremes:
//! `Grace`/`Deadline`/`Patience` at boundary parameters 0 and `u64::MAX`,
//! `Either`'s verdict precedence, and `Counted`'s bookkeeping across resets.
//! Each test drives the combinator with a scripted inner sensing so the
//! expected indication sequence is explicit.

use goc::core::msg::{UserIn, UserOut};
use goc::core::sensing::{
    AlwaysNegative, Counted, Deadline, Either, FnSensing, Grace, Indication, Patience, Sensing,
};
use goc::core::view::ViewEvent;

use Indication::{Negative, Positive, Silent};

fn event(round: u64) -> ViewEvent {
    ViewEvent { round, received: UserIn::default(), sent: UserOut::silence() }
}

/// A sensing that replays a fixed script of indications, then stays silent.
fn scripted(script: Vec<Indication>) -> impl Sensing {
    FnSensing::new("scripted", (script, 0usize), |state, _ev: &ViewEvent| {
        let (script, cursor) = state;
        let out = script.get(*cursor).copied().unwrap_or(Silent);
        *cursor += 1;
        out
    })
}

/// Drives `sensing` through `n` rounds and collects the indications.
fn drive(sensing: &mut impl Sensing, n: u64) -> Vec<Indication> {
    (0..n).map(|round| sensing.observe(&event(round))).collect()
}

// ---------------------------------------------------------------- Grace ----

#[test]
fn grace_zero_never_mutes_a_negative() {
    let mut s = Grace::new(scripted(vec![Negative, Positive, Negative]), 0);
    assert_eq!(drive(&mut s, 3), vec![Negative, Positive, Negative]);
}

#[test]
fn grace_max_mutes_every_negative_but_passes_positives() {
    let mut s = Grace::new(scripted(vec![Negative, Positive, Negative, Negative]), u64::MAX);
    assert_eq!(drive(&mut s, 4), vec![Silent, Positive, Silent, Silent]);
}

#[test]
fn grace_window_counts_observations_not_negatives() {
    // grace = 2: the first two OBSERVATIONS are inside the window, so a
    // negative on round 2 (the third observation) passes through.
    let mut s = Grace::new(AlwaysNegative, 2);
    assert_eq!(drive(&mut s, 4), vec![Silent, Silent, Negative, Negative]);
}

#[test]
fn grace_reset_reopens_the_window() {
    let mut s = Grace::new(AlwaysNegative, 1);
    assert_eq!(drive(&mut s, 2), vec![Silent, Negative]);
    s.reset();
    assert_eq!(drive(&mut s, 2), vec![Silent, Negative]);
}

#[test]
#[should_panic(expected = "positive timeout")]
fn deadline_zero_panics() {
    let _ = Deadline::new(AlwaysNegative, 0);
}

// -------------------------------------------------------------- Deadline ----

#[test]
fn deadline_one_turns_every_silent_round_negative() {
    let mut s = Deadline::new(scripted(vec![Silent, Positive, Silent, Silent]), 1);
    assert_eq!(drive(&mut s, 4), vec![Negative, Positive, Negative, Negative]);
}

#[test]
fn deadline_max_never_fires() {
    let mut s = Deadline::new(scripted(vec![]), u64::MAX);
    assert_eq!(drive(&mut s, 64), vec![Silent; 64]);
}

#[test]
fn deadline_rearms_after_firing_and_on_inner_indications() {
    // timeout = 2: two quiet rounds fire a negative and restart the clock;
    // any inner indication also restarts it.
    let mut s = Deadline::new(scripted(vec![Silent, Silent, Silent, Positive, Silent]), 2);
    assert_eq!(drive(&mut s, 6), vec![Silent, Negative, Silent, Positive, Silent, Negative]);
}

// -------------------------------------------------------------- Patience ----

#[test]
#[should_panic(expected = "positive threshold")]
fn patience_zero_panics() {
    let _ = Patience::new(AlwaysNegative, 0);
}

#[test]
fn patience_one_passes_every_negative() {
    let mut s = Patience::new(scripted(vec![Negative, Silent, Negative, Negative]), 1);
    assert_eq!(drive(&mut s, 4), vec![Negative, Silent, Negative, Negative]);
}

#[test]
fn patience_max_never_passes_a_negative() {
    let mut s = Patience::new(AlwaysNegative, u64::MAX);
    assert_eq!(drive(&mut s, 128), vec![Silent; 128]);
}

#[test]
fn patience_streak_resets_on_any_non_negative() {
    // patience = 2: two consecutive negatives are needed; a positive (or
    // silence) in between restarts the streak.
    let mut s = Patience::new(
        scripted(vec![Negative, Positive, Negative, Negative, Negative, Negative]),
        2,
    );
    assert_eq!(drive(&mut s, 6), vec![Silent, Positive, Silent, Negative, Silent, Negative]);
}

// ---------------------------------------------------------------- Either ----

#[test]
fn either_verdict_precedence_covers_the_full_matrix() {
    // All nine (a, b) combinations: positives win, then negatives, then
    // silence. Both sides are observed every round regardless of the other.
    let menu = [Positive, Negative, Silent];
    for &a_kind in &menu {
        for &b_kind in &menu {
            let mut s = Either::new(scripted(vec![a_kind]), scripted(vec![b_kind]));
            let expected = if a_kind == Positive || b_kind == Positive {
                Positive
            } else if a_kind == Negative || b_kind == Negative {
                Negative
            } else {
                Silent
            };
            assert_eq!(
                s.observe(&event(0)),
                expected,
                "Either({a_kind:?}, {b_kind:?})"
            );
        }
    }
}

#[test]
fn either_advances_both_sides_even_when_one_dominates() {
    // a is positive on round 0 only; b's script must still have advanced
    // past its own round-0 entry when round 1 arrives.
    let mut s = Either::new(
        scripted(vec![Positive, Silent]),
        scripted(vec![Negative, Positive]),
    );
    assert_eq!(s.observe(&event(0)), Positive); // a wins, b consumed Negative
    assert_eq!(s.observe(&event(1)), Positive); // b's round-1 Positive, not its round-0 Negative
}

// --------------------------------------------------------------- Counted ----

#[test]
fn counted_passes_through_and_tallies_each_kind() {
    let script = vec![Positive, Negative, Silent, Negative, Positive, Silent, Silent];
    let mut s = Counted::new(scripted(script.clone()));
    assert_eq!(drive(&mut s, 7), script);
    assert_eq!(s.counts(), (2, 2, 3));
}

#[test]
fn counted_reset_clears_counts_and_propagates_to_the_inner_sensing() {
    // Nest Counted around Grace: after reset, the grace window must be
    // reopened too, so the same script yields the same muted output.
    let mut s = Counted::new(Grace::new(AlwaysNegative, 1));
    assert_eq!(drive(&mut s, 3), vec![Silent, Negative, Negative]);
    assert_eq!(s.counts(), (0, 2, 1));
    s.reset();
    assert_eq!(s.counts(), (0, 0, 0));
    assert_eq!(drive(&mut s, 3), vec![Silent, Negative, Negative]);
    assert_eq!(s.counts(), (0, 2, 1));
}
