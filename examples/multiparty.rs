//! The multi-party setting (paper footnote 1): several servers behind one
//! channel, reduced to the two-party theory.
//!
//! A composite of four servers — two useless, two printer drivers speaking
//! different dialects — faces a universal user over the product class
//! {server} × {dialect}. The user discovers *which* server helps and *how*
//! to address it, jointly.
//!
//! Run with: `cargo run --example multiparty`

use goc::core::multi::{addressed_class, CompositeServer};
use goc::core::strategy::{EchoServer, SilentServer};
use goc::goals::printing::*;
use goc::prelude::*;

const DOC: &str = "multi-party.txt";

fn main() {
    println!("== multi-party: four servers behind one channel ==\n");
    let dialects = Dialect::class(&[0x10, 0x20], &[Encoding::Identity, Encoding::Xor(0x44)]);

    let goal = PrintGoal::new(DOC);
    // Member 2 speaks dialect 1; member 3 speaks dialect 2.
    let composite = || -> BoxedServer {
        Box::new(CompositeServer::new(vec![
            Box::new(SilentServer),
            Box::new(EchoServer),
            Box::new(DriverServer::new(dialects[1].clone())),
            Box::new(DriverServer::new(dialects[2].clone())),
        ]))
    };

    let class = addressed_class(Box::new(dialect_class(DOC, &dialects, false)), 4);
    println!(
        "product class: 4 servers x {} dialect strategies = {} candidates",
        dialects.len(),
        4 * dialects.len()
    );

    let universal = LevinUniversalUser::round_robin(
        Box::new(class),
        Box::new(tray_sensing(DOC)),
        8,
    );
    let mut rng = GocRng::seed_from_u64(11);
    let mut exec =
        Execution::new(goal.spawn_world(&mut rng), composite(), Box::new(universal), rng);
    let t = exec.run(200_000);
    let v = evaluate_finite(&goal, &t);
    println!(
        "\nuniversal user: {} in {} rounds",
        if v.achieved { "document printed" } else { "FAILED" },
        v.rounds
    );
    assert!(v.achieved);

    // Channel statistics from the trace module.
    let stats = goc::core::trace::ChannelStats::of(&t.view);
    println!(
        "traffic: {} msgs to servers, {} replies, {} world reports, {:.0}% user silence",
        stats.sent_to_server,
        stats.recv_from_server,
        stats.recv_from_world,
        100.0 * stats.user_silence_rate()
    );

    println!("\nlast rounds of the transcript:");
    print!("{}", goc::core::trace::render(&t, 4));
}
