//! Multi-session goals as on-line learning (Juba–Vempala; experiment E7).
//!
//! The same transmission goal, played session by session: the enumeration
//! user (Theorem 1's construction) pays ~N−1 mistakes before settling; the
//! halving learner pays ~log₂N; weighted majority survives noisy feedback.
//! The bridge variant plays the game inside the real simulator, learning
//! only from the world's echoes.
//!
//! Run with: `cargo run --example online_learning`

use goc::goals::transmission::Transform;
use goc::learning::*;
use goc::prelude::*;

fn table_class(n: usize) -> TransformClass {
    TransformClass::new((0..n).map(|i| Transform::Table(5_000 + i as u64)).collect())
}

fn main() {
    println!("== multi-session transmission = on-line learning ==\n");
    println!(
        "{:>6} {:>14} {:>12} {:>16}",
        "N", "enumeration", "halving", "⌈log2 N⌉"
    );
    for exp in 1..=9u32 {
        let n = 1usize << exp;
        let class = table_class(n);
        let concept = n - 1; // adversarial: the last hypothesis is true

        let mut enumeration = EnumerationPolicy::new(n);
        let re = run_arena(
            &class,
            concept,
            &mut enumeration,
            (4 * n) as u64,
            4,
            &mut GocRng::seed_from_u64(exp as u64),
        );
        let mut halving = HalvingPolicy::new(n);
        let rh = run_arena(
            &class,
            concept,
            &mut halving,
            (4 * n) as u64,
            4,
            &mut GocRng::seed_from_u64(100 + exp as u64),
        );
        println!("{n:>6} {:>14} {:>12} {:>16}", re.mistakes, rh.mistakes, exp);
        assert!(re.converged() && rh.converged());
        assert!(rh.mistakes <= exp as u64 + 1);
        assert!(re.mistakes >= rh.mistakes);
    }

    println!("\nbridged into the real simulator (echo feedback only):");
    let n = 32;
    let class = table_class(n);
    let mut enumeration = EnumerationPolicy::new(n);
    let be = run_bridge(&class, n - 1, &mut enumeration, 150, 4, &mut GocRng::seed_from_u64(7));
    let mut halving = HalvingPolicy::new(n);
    let bh = run_bridge(&class, n - 1, &mut halving, 150, 4, &mut GocRng::seed_from_u64(8));
    println!("  N = {n}: enumeration missed {} sessions, halving {}", be.mistakes, bh.mistakes);
    assert!(be.converged() && bh.converged());

    println!("\nnoisy feedback (10% of sessions report flipped correctness):");
    let n = 16;
    let class = table_class(n);
    let mut wm = WeightedMajorityPolicy::new(n, 0.5);
    let mut rng = GocRng::seed_from_u64(9);
    let mut mistakes_late = 0u64;
    for session in 0..400u64 {
        let challenge = rng.bytes(4);
        let responses: Vec<Vec<u8>> =
            (0..n).map(|h| class.respond(h, &challenge)).collect();
        let truth = responses[n - 1].clone();
        let pred = wm.predict(&responses);
        if session >= 200 && pred != truth {
            mistakes_late += 1;
        }
        let flip = session % 10 == 9;
        let correct: Vec<bool> = responses.iter().map(|r| (*r == truth) != flip).collect();
        wm.update(&responses, &correct);
    }
    println!("  weighted majority: {mistakes_late} mistakes in the last 200 sessions");
    assert!(mistakes_late <= 30);
    println!("\nok.");
}
