//! Quickstart: a universal user that achieves its goal with a server it was
//! never introduced to.
//!
//! The goal: make the world hear the magic word. The catch: the word must
//! arrive *through the server*, and the server applies an unknown Caesar
//! shift to everything the user says. The universal user of Theorem 1
//! (finite case) enumerates compensating strategies Levin-style and uses the
//! world's acknowledgement as safe sensing to know when to stop.
//!
//! Run with: `cargo run --example quickstart`

use goc::core::toy;
use goc::prelude::*;

fn main() {
    println!("== goc quickstart: the magic-word goal ==\n");
    let goal = toy::MagicWordGoal::new("xyzzy");

    for shift in [0u8, 3, 7, 12] {
        // The adversary picks a server; the user doesn't know which.
        let server = toy::RelayServer::with_shift(shift);

        // The universal user: enumerate 16 candidate strategies, halt on the
        // world's ACK (safe + viable sensing).
        let universal = LevinUniversalUser::new(
            Box::new(toy::caesar_class("xyzzy", 16, false)),
            Box::new(toy::ack_sensing()),
            8,
        );

        let mut rng = GocRng::seed_from_u64(42 + shift as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(server),
            Box::new(universal),
            rng,
        );
        let t = exec.run(1_000_000);
        let v = evaluate_finite(&goal, &t);
        println!(
            "server shift {shift:>2}: goal {} in {} rounds",
            if v.achieved { "ACHIEVED" } else { "failed  " },
            v.rounds
        );
        assert!(v.achieved, "Theorem 1 says this cannot fail with a helpful server");
    }

    println!("\nSafety check: with an UNHELPFUL (silent) server the universal");
    println!("user must never falsely declare success…");
    let universal = LevinUniversalUser::new(
        Box::new(toy::caesar_class("xyzzy", 16, false)),
        Box::new(toy::ack_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(1);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(goc::core::strategy::SilentServer),
        Box::new(universal),
        rng,
    );
    let t = exec.run(20_000);
    let v = evaluate_finite(&goal, &t);
    println!(
        "silent server: halted = {}, achieved = {} (after {} rounds)",
        v.halted, v.achieved, v.rounds
    );
    assert!(!v.halted, "safe sensing never turns positive without success");
    println!("\nok.");
}
