//! The price of universality (paper §3: "the overhead introduced by the
//! enumeration is essentially necessary").
//!
//! Servers are relays locked behind a k-bit password: nothing works until
//! the exact password arrives. An *informed* user knows the password and
//! pays O(1); a *universal* user can only enumerate the 2^k candidates, so
//! its cost doubles with every password bit — experiment E3.
//!
//! Run with: `cargo run --example password_overhead`

use goc::core::enumeration::SliceEnumerator;
use goc::core::toy;
use goc::core::wrappers::PasswordLocked;
use goc::prelude::*;

/// Builds the candidate class for k-bit passwords: each strategy sends its
/// candidate password once, then behaves like the magic-word speaker.
fn password_class(k: u32) -> SliceEnumerator {
    let mut class = SliceEnumerator::new(format!("password-users(2^{k})"));
    for candidate in 0..(1u64 << k) {
        class.push(move || {
            let pw = format!("{candidate:0width$b}", width = k as usize);
            Box::new(PasswordThenSpeak::new(pw, "open"))
        });
    }
    class
}

/// Sends a password once, then repeats the magic word.
#[derive(Debug)]
struct PasswordThenSpeak {
    password: Vec<u8>,
    word: Vec<u8>,
    round: u64,
    halt: Option<goc::core::strategy::Halt>,
}

impl PasswordThenSpeak {
    fn new(password: impl AsRef<[u8]>, word: impl AsRef<[u8]>) -> Self {
        PasswordThenSpeak {
            password: password.as_ref().to_vec(),
            word: word.as_ref().to_vec(),
            round: 0,
            halt: None,
        }
    }
}

impl goc::core::strategy::UserStrategy for PasswordThenSpeak {
    fn step(&mut self, _ctx: &mut StepCtx<'_>, input: &UserIn) -> UserOut {
        if self.halt.is_some() {
            return UserOut::silence();
        }
        if input.from_world.as_bytes() == toy::ACK.as_bytes() {
            self.halt = Some(goc::core::strategy::Halt::with_output("done"));
            return UserOut::silence();
        }
        self.round += 1;
        if self.round == 1 {
            UserOut::to_server(Message::from_bytes(self.password.clone()))
        } else {
            UserOut::to_server(Message::from_bytes(self.word.clone()))
        }
    }

    fn halted(&self) -> Option<goc::core::strategy::Halt> {
        self.halt.clone()
    }
}

fn run(k: u32, secret: u64, informed: bool) -> u64 {
    let goal = toy::MagicWordGoal::new("open");
    let password = format!("{secret:0width$b}", width = k as usize);
    let user: BoxedUser = if informed {
        Box::new(PasswordThenSpeak::new(password.clone(), "open"))
    } else {
        Box::new(LevinUniversalUser::round_robin(
            Box::new(password_class(k)),
            Box::new(toy::ack_sensing()),
            6,
        ))
    };
    let mut rng = GocRng::seed_from_u64(1000 + k as u64);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(PasswordLocked::new(Box::new(toy::RelayServer::default()), password)),
        user,
        rng,
    );
    let t = exec.run(10_000_000);
    let v = evaluate_finite(&goal, &t);
    assert!(v.achieved, "k={k}: {v:?}");
    v.rounds
}

fn main() {
    println!("== password-locked servers: the necessity of overhead ==\n");
    println!("{:>4} {:>12} {:>14} {:>10}", "k", "informed", "universal", "ratio");
    let mut prev_universal = None;
    for k in 2..=10u32 {
        // Adversarial password: the all-ones string is enumerated last.
        let secret = (1u64 << k) - 1;
        let informed = run(k, secret, true);
        let universal = run(k, secret, false);
        let ratio = universal as f64 / informed as f64;
        println!("{k:>4} {informed:>12} {universal:>14} {ratio:>9.0}x");
        if let Some(prev) = prev_universal {
            assert!(
                universal as f64 >= 1.5 * prev as f64,
                "cost must roughly double per password bit"
            );
        }
        prev_universal = Some(universal);
    }
    println!("\nThe universal column doubles with k — the 2^k enumeration");
    println!("overhead the paper proves unavoidable in general.");
}
