//! The embodied goal: keep reaching a moving target through an actuator
//! whose button wiring is one of 24 unknown permutations.
//!
//! Compares the three faces of universality on the same compact goal:
//! the enumeration-based universal user (Theorem 1), a single greedy
//! navigator with the *right* wiring (the informed baseline), and the
//! self-calibrating learner (the efficient special case).
//!
//! Run with: `cargo run --example navigator`

use goc::core::sensing::Deadline;
use goc::goals::navigation::*;
use goc::prelude::*;

fn run(user: BoxedUser, wiring: Wiring, seed: u64) -> goc::core::goal::CompactVerdict {
    let goal = NavigationGoal::new(8, 8, 60);
    let mut rng = GocRng::seed_from_u64(seed);
    let mut exec = Execution::new(
        goal.spawn_world(&mut rng),
        Box::new(ActuatorServer::new(wiring)),
        user,
        rng,
    );
    let t = exec.run_for(80_000);
    evaluate_compact(&goal, &t)
}

fn main() {
    println!("== navigation: 8x8 grid, moving target, 24 possible wirings ==\n");
    println!("{:>8} {:>22} {:>22} {:>22}", "wiring", "informed (greedy)", "universal (enum)", "calibrating");

    for idx in [0usize, 5, 11, 17, 23] {
        let wiring = Wiring::nth(idx);

        let informed = run(Box::new(GreedyNavigator::new(wiring)), wiring, 10 + idx as u64);

        let universal = CompactUniversalUser::new(
            Box::new(wiring_class()),
            Box::new(Deadline::new(visit_sensing(), 80)),
        );
        let enumerated = run(Box::new(universal), wiring, 20 + idx as u64);

        let calibrating = run(Box::new(CalibratingNavigator::new()), wiring, 30 + idx as u64);

        let show = |v: &goc::core::goal::CompactVerdict| {
            format!(
                "{} (last bad {:?})",
                if v.achieved(5_000) { "settled" } else { "FAILED " },
                v.last_bad_prefix
            )
        };
        println!(
            "{idx:>8} {:>22} {:>22} {:>22}",
            show(&informed),
            show(&enumerated),
            show(&calibrating)
        );
        assert!(informed.achieved(2_000));
        assert!(enumerated.achieved(2_000));
        assert!(calibrating.achieved(2_000));
    }

    println!("\nAll three settle; the calibrating navigator settles without");
    println!("ever enumerating the 24-wiring class — the paper's closing");
    println!("remark about efficient algorithms for broad classes.");
}
