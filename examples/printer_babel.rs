//! The paper's flagship scenario: printing a document through a driver whose
//! command dialect you don't speak.
//!
//! We build a class of 24 printer-driver dialects (6 opcodes × 4 payload
//! encodings) and show:
//!
//! 1. a *universal* user prints with **every** driver in the class (finite
//!    goal, Levin enumeration + output-tray sensing);
//! 2. the *compact* variant — keep the page freshly printed forever — via
//!    the switch-on-negative universal user;
//! 3. sensing validators confirming the tray feedback is safe and viable.
//!
//! Run with: `cargo run --example printer_babel`

use goc::core::helpful::TrialConfig;
use goc::core::sensing::Deadline;
use goc::core::validate;
use goc::goals::printing::*;
use goc::prelude::*;

const DOC: &str = "quarterly-report.pdf";

fn dialects() -> Vec<Dialect> {
    Dialect::class(
        &[0x01, 0x17, 0x42, 0x50, 0x7e, 0xc3],
        &Encoding::family(&[0x2a], &[13]),
    )
}

fn main() {
    let dialects = dialects();
    println!("== printer babel: {} driver dialects ==\n", dialects.len());

    // --- 1. Finite goal: print once, with every driver. -------------------
    let goal = PrintGoal::new(DOC);
    println!("finite goal (print once):");
    for (i, dialect) in dialects.iter().enumerate() {
        // Round-robin doubling: linear (not 2^i) overhead over the
        // 24-dialect class — see DESIGN.md ablation E8.
        let universal = LevinUniversalUser::round_robin(
            Box::new(dialect_class(DOC, &dialects, false)),
            Box::new(tray_sensing(DOC)),
            8,
        );
        let mut rng = GocRng::seed_from_u64(100 + i as u64);
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(DriverServer::new(dialect.clone())),
            Box::new(universal),
            rng,
        );
        let t = exec.run(100_000);
        let v = evaluate_finite(&goal, &t);
        println!(
            "  driver {i:>2} ({:#04x}, {:?}): {} in {:>7} rounds",
            dialect.opcode(),
            dialect.encoding(),
            if v.achieved { "printed" } else { "FAILED " },
            v.rounds
        );
        assert!(v.achieved);
    }

    // --- 2. Compact goal: keep it printed. --------------------------------
    println!("\ncompact goal (keep the page fresh, window 64):");
    let cgoal = CompactPrintGoal::new(DOC, 64);
    for (i, dialect) in dialects.iter().enumerate().take(6) {
        let universal = CompactUniversalUser::new(
            Box::new(dialect_class(DOC, &dialects, true)),
            Box::new(Deadline::new(tray_sensing(DOC), 32)),
        );
        let mut rng = GocRng::seed_from_u64(500 + i as u64);
        let mut exec = Execution::new(
            cgoal.spawn_world(&mut rng),
            Box::new(DriverServer::new(dialect.clone())),
            Box::new(universal),
            rng,
        );
        let t = exec.run_for(60_000);
        let v = evaluate_compact(&cgoal, &t);
        println!(
            "  driver {i:>2}: {} (bad prefixes: {:>5}, last at {:?})",
            if v.achieved(5_000) { "settled" } else { "FAILED " },
            v.bad_prefixes,
            v.last_bad_prefix
        );
        assert!(v.achieved(5_000));
    }

    // --- 3. Chunked submission: documents bigger than a frame. -------------
    println!("\nchunked submission (dialect x chunk-size class, buffer-limited driver):");
    let long_doc = "annual-report-".repeat(8);
    let cgoal2 = PrintGoal::new(long_doc.as_bytes());
    let chunk_sizes = [4usize, 24];
    // Driver: dialect 3, 16-byte frame buffer -> only 4-byte chunks fit.
    let chunked_universal = LevinUniversalUser::round_robin(
        Box::new(chunked_class(long_doc.as_bytes(), &dialects, &chunk_sizes)),
        Box::new(tray_sensing(long_doc.as_bytes())),
        64,
    );
    let mut rng = GocRng::seed_from_u64(900);
    let mut exec = Execution::new(
        cgoal2.spawn_world(&mut rng),
        Box::new(ChunkedDriverServer::new(dialects[3].clone(), 16)),
        Box::new(chunked_universal),
        rng,
    );
    let t = exec.run(2_000_000);
    let v = evaluate_finite(&cgoal2, &t);
    println!(
        "  {}-byte document through a 16-byte buffer: {} in {} rounds",
        long_doc.len(),
        if v.achieved { "printed" } else { "FAILED" },
        v.rounds
    );
    assert!(v.achieved);

    // --- 4. Validate the sensing hypotheses of Theorem 1. ------------------
    println!("\nvalidating sensing (Monte-Carlo):");
    let class = dialect_class(DOC, &dialects, false);
    let cfg = TrialConfig { trials: 3, horizon: 400, seed: 9, window: 60 };
    let d0 = dialects[0].clone();
    let d1 = dialects[5].clone();
    let mk0 = move || Box::new(DriverServer::new(d0.clone())) as BoxedServer;
    let mk1 = move || Box::new(DriverServer::new(d1.clone())) as BoxedServer;
    let silent = || Box::new(goc::core::strategy::SilentServer) as BoxedServer;
    let servers: Vec<validate::MakeServer<'_>> = vec![&mk0, &mk1, &silent];
    let safety = validate::finite_safety(
        &goal,
        &servers,
        &class,
        &|| Box::new(tray_sensing(DOC)),
        &cfg,
    );
    println!("  safety:    {} ({} indications checked)", ok(safety.holds()), safety.checks);
    let helpful_only: Vec<validate::MakeServer<'_>> = vec![&mk0, &mk1];
    let viability = validate::finite_viability(
        &goal,
        &helpful_only,
        &class,
        &|| Box::new(tray_sensing(DOC)),
        &cfg,
    );
    println!("  viability: {} ({} servers checked)", ok(viability.holds()), viability.checks);
    assert!(safety.holds() && viability.holds());
    println!("\nok.");
}

fn ok(b: bool) -> &'static str {
    if b {
        "holds"
    } else {
        "VIOLATED"
    }
}
