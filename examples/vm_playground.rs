//! The strategy VM up close: assemble, disassemble, run, and locate
//! programs inside the enumeration that Theorem 1's proof manipulates.
//!
//! Run with: `cargo run --example vm_playground`

use goc::vm::asm::assemble;
use goc::vm::enumerate::ProgramEnumerator;
use goc::vm::machine::{Machine, RoundIo};
use goc::vm::Program;

fn main() {
    println!("== the strategy VM ==\n");

    // 1. Write a strategy in assembly.
    let source = "\
; greet the peer, then relay the world's feedback back to the peer
emit.a 'h'
emit.a 'i'
copy.b -> A
end";
    let program = assemble(source).expect("valid assembly");
    println!("source:\n{source}\n");
    println!("bytes:  {:?}", program.as_bytes());
    println!("listing:\n{}\n", program.disassemble());

    // 2. Run it for a few rounds.
    let mut machine = Machine::new(program.clone());
    for round in 0..3 {
        let mut io = RoundIo::with_inputs(b"".to_vec(), format!("W{round}").into_bytes());
        machine.round(&mut io);
        println!(
            "round {round}: out_a = {:?}, out_b = {:?}",
            String::from_utf8_lossy(&io.out_a),
            String::from_utf8_lossy(&io.out_b),
        );
    }
    println!("instructions retired: {}\n", machine.instructions_retired());

    // 3. Where does this program live in the enumeration?
    let alphabet: Vec<u8> = {
        let mut a: Vec<u8> = program.as_bytes().to_vec();
        a.sort_unstable();
        a.dedup();
        a
    };
    let class = ProgramEnumerator::over(alphabet.clone());
    let index = class.index_of(&program).expect("writable in its own alphabet");
    println!(
        "over its own {}-byte alphabet, the program is enumeration index {index}",
        alphabet.len()
    );
    assert_eq!(class.program(index), program);

    // 4. Total decoding: *any* bytes are a program.
    let junk = Program::from_bytes(vec![0xde, 0xad, 0xbe, 0xef]);
    println!("\n0xdeadbeef decodes to:\n{}", junk.disassemble());
    let mut m = Machine::new(junk);
    let mut io = RoundIo::default();
    m.round(&mut io); // guaranteed safe: fuel-bounded, total
    println!("…and runs safely ({} instructions retired).", m.instructions_retired());
}
