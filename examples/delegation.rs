//! Delegation of computation (the Juba–Sudan scenario): obtain the answer to
//! a puzzle you can check but not crack, from a server whose query protocol
//! you don't know.
//!
//! Run with: `cargo run --example delegation`

use goc::goals::codec::Encoding;
use goc::goals::computation::*;
use goc::prelude::*;
use std::sync::Arc;

fn main() {
    println!("== delegation of computation ==\n");

    let puzzle: Arc<dyn Puzzle + Send + Sync> = Arc::new(ModSquareRoot::new(10007));
    let goal = DelegationGoal::new(puzzle.clone());
    let protocols = QueryProtocol::class(
        &[b'?', b'!', b'>', 0x01],
        &Encoding::family(&[0x55], &[7]),
    );
    println!("protocol class: {} greeting×encoding combinations\n", protocols.len());

    // The universal client vs every server in the class — oracle flavour
    // (the server is entrusted with the answer) and solver flavour (the
    // server recomputes it).
    for (i, proto) in protocols.iter().enumerate() {
        for (flavour, server) in [
            ("oracle", Box::new(OracleServer::new(*proto)) as BoxedServer),
            ("solver", Box::new(SolverServer::new(*proto, puzzle.clone())) as BoxedServer),
        ] {
            let universal = LevinUniversalUser::round_robin(
                Box::new(protocol_class(&protocols, puzzle.clone())),
                Box::new(confirmation_sensing()),
                8,
            );
            let mut rng = GocRng::seed_from_u64(7_000 + i as u64);
            let mut exec =
                Execution::new(goal.spawn_world(&mut rng), server, Box::new(universal), rng);
            let t = exec.run(100_000);
            let v = evaluate_finite(&goal, &t);
            let answer = t
                .halt()
                .map(|h| String::from_utf8_lossy(h.output.as_bytes()).into_owned())
                .unwrap_or_default();
            if flavour == "oracle" {
                print!("  protocol {i:>2}: ");
            } else {
                print!("               ");
            }
            println!(
                "{flavour}: {} in {:>7} rounds (answer: {answer})",
                if v.achieved { "solved" } else { "FAILED" },
                v.rounds
            );
            assert!(v.achieved);
        }
    }

    // Subset-sum, for a computational (rather than entrusted) asymmetry.
    println!("\nsubset-sum delegation (server brute-forces 2^14 masks):");
    let ss: Arc<dyn Puzzle + Send + Sync> = Arc::new(SubsetSum::new(14, 12));
    let ss_goal = DelegationGoal::new(ss.clone());
    let proto = protocols[3];
    let universal = LevinUniversalUser::round_robin(
        Box::new(protocol_class(&protocols, ss.clone())),
        Box::new(confirmation_sensing()),
        8,
    );
    let mut rng = GocRng::seed_from_u64(99);
    let mut exec = Execution::new(
        ss_goal.spawn_world(&mut rng),
        Box::new(SolverServer::new(proto, ss)),
        Box::new(universal),
        rng,
    );
    let t = exec.run(100_000);
    let v = evaluate_finite(&ss_goal, &t);
    println!(
        "  {} in {} rounds",
        if v.achieved { "solved" } else { "FAILED" },
        v.rounds
    );
    assert!(v.achieved);
    println!("\nok.");
}
