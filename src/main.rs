//! `goc` — command-line front end: run goal scenarios, trace executions,
//! and drive the strategy VM.
//!
//! ```text
//! goc demo <scenario> [--seed N] [--horizon N]   run a scenario end-to-end
//! goc trace <scenario> [--seed N] [--limit N]    run + render the transcript
//! goc vm-asm <file|->                            assemble VM assembly, print listing
//! goc vm-run <file|-> [--rounds N]               assemble and run a VM program
//! goc list                                       list scenarios
//! ```
//!
//! Scenarios: `magic`, `printing`, `delegation`, `transmission`,
//! `navigation`, `multiparty`.

use goc::core::multi::{addressed_class, CompositeServer};
use goc::core::sensing::Deadline;
use goc::core::strategy::{EchoServer, SilentServer};
use goc::core::toy;
use goc::serve::Session;
use goc::goals::codec::Encoding;
use goc::goals::computation as comp;
use goc::goals::navigation as nav;
use goc::goals::printing as print;
use goc::goals::transmission as tx;
use goc::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let code = match it.next() {
        Some("demo") => cmd_demo(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("vm-asm") => cmd_vm_asm(&args[1..]),
        Some("vm-run") => cmd_vm_run(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("list") => {
            println!("scenarios: {}", SCENARIOS.join(", "));
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{HELP}");
            ExitCode::FAILURE
        }
    };
    // The CLI exit path mirrors the daemon's teardown discipline: any
    // background jobs the run queued (prewarm etc.) complete before the
    // process reports done, so nothing is lost mid-write.
    goc::core::par::pool::drain();
    // Close out a `GOC_TRACE` file with the deterministic metric totals;
    // a no-op (two relaxed loads) when tracing is off.
    goc::core::obs::flush_metrics();
    code
}

const HELP: &str = "\
goc — goal-oriented communication scenarios

USAGE:
    goc demo <scenario> [--seed N] [--horizon N]
    goc trace <scenario> [--seed N] [--limit N]
    goc vm-asm <file|->
    goc vm-run <file|-> [--rounds N]
    goc snapshot <snap-scenario> [--seed N] [--round N] [--out FILE]
    goc resume <snap-scenario> [--seed N] [--horizon N] [--checkpoint N | --snap FILE]
    goc list

Scenarios: magic, printing, delegation, transmission, navigation, multiparty
Snapshot scenarios: magic, magic-compact
";

const SCENARIOS: [&str; 6] =
    ["magic", "printing", "delegation", "transmission", "navigation", "multiparty"];

/// Parses `--key value` flags, returning (positional, flag-lookup).
fn parse_flags(args: &[String]) -> (Vec<&str>, impl Fn(&str, u64) -> u64 + '_) {
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    let lookup = move |key: &str, default: u64| -> u64 {
        let flag = format!("--{key}");
        args.iter()
            .position(|a| a == &flag)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    (positional, lookup)
}

/// Builds a scenario's (runner) closure; returns `None` for unknown names.
#[allow(clippy::type_complexity)]
fn run_scenario(
    name: &str,
    seed: u64,
    horizon: u64,
) -> Option<(bool, u64, String)> {
    match name {
        "magic" => {
            let goal = toy::MagicWordGoal::new("xyzzy");
            let user = LevinUniversalUser::round_robin(
                Box::new(toy::caesar_class("xyzzy", 16, false)),
                Box::new(toy::ack_sensing()),
                8,
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let shift = (rng.below(16)) as u8;
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(toy::RelayServer::with_shift(shift)),
                Box::new(user),
                rng,
            );
            let t = exec.run(horizon);
            let v = evaluate_finite(&goal, &t);
            Some((v.achieved, v.rounds, format!("magic word via Caesar relay (+{shift})")))
        }
        "printing" => {
            let dialects =
                print::Dialect::class(&[0x11, 0x42], &Encoding::family(&[0x2a], &[13]));
            let goal = print::PrintGoal::new("report.pdf");
            let user = LevinUniversalUser::round_robin(
                Box::new(print::dialect_class("report.pdf", &dialects, false)),
                Box::new(print::tray_sensing("report.pdf")),
                8,
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let pick = rng.index(dialects.len());
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(print::DriverServer::new(dialects[pick].clone())),
                Box::new(user),
                rng,
            );
            let t = exec.run(horizon);
            let v = evaluate_finite(&goal, &t);
            Some((v.achieved, v.rounds, format!("print through driver dialect #{pick}")))
        }
        "delegation" => {
            let puzzle: Arc<dyn comp::Puzzle + Send + Sync> =
                Arc::new(comp::ModSquareRoot::new(10007));
            let protocols =
                comp::QueryProtocol::class(b"?!", &Encoding::family(&[0x55], &[7]));
            let goal = comp::DelegationGoal::new(puzzle.clone());
            let user = LevinUniversalUser::round_robin(
                Box::new(comp::protocol_class(&protocols, puzzle.clone())),
                Box::new(comp::confirmation_sensing()),
                8,
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let pick = rng.index(protocols.len());
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(comp::OracleServer::new(protocols[pick])),
                Box::new(user),
                rng,
            );
            let t = exec.run(horizon);
            let v = evaluate_finite(&goal, &t);
            Some((v.achieved, v.rounds, format!("delegated mod-sqrt via protocol #{pick}")))
        }
        "transmission" => {
            let family = tx::Transform::family(&[0x0f], &[1, 7], &[41]);
            let goal = tx::TransmissionGoal::new(3, 40, 20);
            let user = CompactUniversalUser::new(
                Box::new(tx::transform_class(&family)),
                Box::new(Deadline::new(tx::ok_sensing(), 45)),
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let pick = rng.index(family.len());
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(tx::PipeServer::new(family[pick].clone())),
                Box::new(user),
                rng,
            );
            let t = exec.run_for(horizon);
            let v = evaluate_compact(&goal, &t);
            Some((
                v.achieved(horizon / 10),
                v.last_bad_prefix.unwrap_or(0),
                format!("transmission through transform #{pick} (settle round shown)"),
            ))
        }
        "navigation" => {
            let goal = nav::NavigationGoal::new(8, 8, 60);
            let user = CompactUniversalUser::new(
                Box::new(nav::wiring_class()),
                Box::new(Deadline::new(nav::visit_sensing(), 80)),
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let pick = rng.index(24);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(nav::ActuatorServer::new(nav::Wiring::nth(pick))),
                Box::new(user),
                rng,
            );
            let t = exec.run_for(horizon);
            let v = evaluate_compact(&goal, &t);
            Some((
                v.achieved(horizon / 10),
                v.last_bad_prefix.unwrap_or(0),
                format!("navigate via actuator wiring #{pick} (settle round shown)"),
            ))
        }
        "multiparty" => {
            let dialects =
                print::Dialect::class(&[0x10, 0x20], &[Encoding::Identity, Encoding::Xor(0x44)]);
            let goal = print::PrintGoal::new("doc");
            let composite = CompositeServer::new(vec![
                Box::new(SilentServer),
                Box::new(EchoServer),
                Box::new(print::DriverServer::new(dialects[2].clone())),
            ]);
            let user = LevinUniversalUser::round_robin(
                Box::new(addressed_class(
                    Box::new(print::dialect_class("doc", &dialects, false)),
                    3,
                )),
                Box::new(print::tray_sensing("doc")),
                8,
            );
            let mut rng = GocRng::seed_from_u64(seed);
            let mut exec = Execution::new(
                goal.spawn_world(&mut rng),
                Box::new(composite),
                Box::new(user),
                rng,
            );
            let t = exec.run(horizon);
            let v = evaluate_finite(&goal, &t);
            Some((v.achieved, v.rounds, "print via 3-server composite".to_string()))
        }
        _ => None,
    }
}

/// Looks up a `--key value` string flag.
fn flag_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    args.iter().position(|a| a == &flag).and_then(|p| args.get(p + 1)).map(String::as_str)
}

fn cmd_snapshot(args: &[String]) -> ExitCode {
    let (positional, flag) = parse_flags(args);
    let Some(&scenario) = positional.first() else {
        eprintln!("usage: goc snapshot <scenario> [--seed N] [--round N] [--out FILE]");
        return ExitCode::FAILURE;
    };
    let seed = flag("seed", 42);
    let round = flag("round", 500);
    let out = flag_str(args, "out").unwrap_or("goc.snap");
    // Snapshot scenarios live in `goc_serve::session`: the CLI, the daemon
    // shards, and `goc-load` all build sessions through the same
    // constructors, which is what keeps their outcomes byte-comparable.
    let Some(mut session) = Session::build(scenario, seed) else {
        eprintln!("unknown snapshot scenario `{scenario}`; try: magic, magic-compact");
        return ExitCode::FAILURE;
    };
    session.step_to(round);
    let bytes = match session.save_to_vec() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("snapshot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{}: saved {} bytes at round {} to {out}",
        session.label(),
        bytes.len(),
        session.round()
    );
    ExitCode::SUCCESS
}

fn cmd_resume(args: &[String]) -> ExitCode {
    let (positional, flag) = parse_flags(args);
    let Some(&scenario) = positional.first() else {
        eprintln!(
            "usage: goc resume <scenario> [--seed N] [--horizon N] [--checkpoint N | --snap FILE]"
        );
        return ExitCode::FAILURE;
    };
    let seed = flag("seed", 42);
    let horizon = flag("horizon", 20_000);
    let Some(mut session) = Session::build(scenario, seed) else {
        eprintln!("unknown snapshot scenario `{scenario}`; try: magic, magic-compact");
        return ExitCode::FAILURE;
    };
    let bytes = if let Some(path) = flag_str(args, "snap") {
        // File mode: resume a run saved by `goc snapshot`.
        match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Differential mode: run to the checkpoint in-process, save, and
        // restore into a fresh skeleton. `--checkpoint 0` exercises the
        // identical code path without any pre-checkpoint rounds, so the two
        // invocations are byte-comparable on stdout and `GOC_TRACE`.
        let checkpoint = flag("checkpoint", 0);
        session.step_to(checkpoint);
        match session.save_to_vec() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("snapshot failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let Some(mut resumed) = Session::build(scenario, seed) else {
        unreachable!("scenario validated above");
    };
    if let Err(e) = resumed.restore(&bytes) {
        eprintln!("restore failed: {e}");
        return ExitCode::FAILURE;
    }
    resumed.step_to(horizon);
    // The deterministic end-of-run summary; byte equality of this line
    // (plus `GOC_TRACE` output) is what CI's differential gate compares
    // between interrupted and uninterrupted runs.
    println!("{}", resumed.outcome_line());
    ExitCode::SUCCESS
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let (positional, flag) = parse_flags(args);
    let Some(&scenario) = positional.first() else {
        eprintln!("usage: goc demo <scenario> [--seed N] [--horizon N]");
        return ExitCode::FAILURE;
    };
    let seed = flag("seed", 42);
    let horizon = flag("horizon", 500_000);
    match run_scenario(scenario, seed, horizon) {
        Some((achieved, rounds, label)) => {
            println!(
                "{label}: {} (round metric: {rounds}, seed {seed})",
                if achieved { "GOAL ACHIEVED" } else { "failed" }
            );
            if achieved {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            eprintln!("unknown scenario `{scenario}`; try: {}", SCENARIOS.join(", "));
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let (positional, flag) = parse_flags(args);
    let Some(&scenario) = positional.first() else {
        eprintln!("usage: goc trace <scenario> [--seed N] [--limit N]");
        return ExitCode::FAILURE;
    };
    let seed = flag("seed", 42);
    let limit = flag("limit", 12) as usize;
    // Trace the magic scenario concretely (the only one whose transcript
    // type we can name here without generics gymnastics); other scenarios
    // fall back to the demo summary.
    if scenario == "magic" {
        let goal = toy::MagicWordGoal::new("xyzzy");
        let user = LevinUniversalUser::round_robin(
            Box::new(toy::caesar_class("xyzzy", 16, false)),
            Box::new(toy::ack_sensing()),
            8,
        );
        let mut rng = GocRng::seed_from_u64(seed);
        let shift = (rng.below(16)) as u8;
        let mut exec = Execution::new(
            goal.spawn_world(&mut rng),
            Box::new(toy::RelayServer::with_shift(shift)),
            Box::new(user),
            rng,
        );
        let t = exec.run(500_000);
        print!("{}", goc::core::trace::render(&t, limit));
        let stats = goc::core::trace::ChannelStats::of(&t.view);
        println!(
            "stats: {} sent / {} received messages, {} / {} bytes",
            stats.sent_to_server + stats.sent_to_world,
            stats.recv_from_server + stats.recv_from_world,
            stats.bytes_sent,
            stats.bytes_received
        );
        return ExitCode::SUCCESS;
    }
    cmd_demo(args)
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| e.to_string())?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_vm_asm(args: &[String]) -> ExitCode {
    let (positional, _) = parse_flags(args);
    let Some(&path) = positional.first() else {
        eprintln!("usage: goc vm-asm <file|->");
        return ExitCode::FAILURE;
    };
    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match goc::vm::asm::assemble(&source) {
        Ok(program) => {
            println!("; {} bytes", program.len());
            for b in program.as_bytes() {
                print!("{b:02x}");
            }
            println!();
            println!("{}", program.disassemble());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("assembly error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_vm_run(args: &[String]) -> ExitCode {
    let (positional, flag) = parse_flags(args);
    let Some(&path) = positional.first() else {
        eprintln!("usage: goc vm-run <file|-> [--rounds N]");
        return ExitCode::FAILURE;
    };
    let rounds = flag("rounds", 5);
    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match goc::vm::asm::assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = goc::vm::Machine::new(program);
    for round in 0..rounds {
        let mut io = goc::vm::RoundIo::default();
        machine.round(&mut io);
        println!(
            "round {round}: A→{:?} B→{:?}{}",
            String::from_utf8_lossy(&io.out_a),
            String::from_utf8_lossy(&io.out_b),
            if machine.halted().is_some() { "  [halted]" } else { "" }
        );
        if machine.halted().is_some() {
            break;
        }
    }
    println!("instructions retired: {}", machine.instructions_retired());
    ExitCode::SUCCESS
}
