//! # goc — A Theory of Goal-Oriented Communication, executable
//!
//! An executable rendering of *A Theory of Goal-Oriented Communication*
//! (Goldreich, Juba, Sudan; PODC 2011 / ECCC TR09-075): communication
//! modelled as a means to a **goal**, judged by a referee over world states,
//! with **universal user strategies** that succeed with every *helpful*
//! server despite having no shared protocol — as long as safe and viable
//! **sensing** exists (Theorem 1).
//!
//! This facade re-exports the workspace crates:
//!
//! - [`core`] ([`goc_core`]) — the model: strategies, executions, goals,
//!   referees, sensing, enumerations, and the two universal constructions.
//! - [`vm`] ([`goc_vm`]) — a total, enumerable strategy bytecode: the
//!   literal "enumeration of all user strategies".
//! - [`goals`] ([`goc_goals`]) — printing, delegation-of-computation,
//!   transmission, navigation.
//! - [`learning`] ([`goc_learning`]) — multi-session goals as on-line
//!   learning (Juba–Vempala).
//! - [`serve`] ([`goc_serve`]) — sessions as a service: the sharded
//!   daemon, its snap-disciplined wire format, and the load generator.
//!
//! ## Quickstart
//!
//! ```
//! use goc::prelude::*;
//! use goc::core::toy;
//!
//! // A server class the user was never introduced to: Caesar relays.
//! let goal = toy::MagicWordGoal::new("xyzzy");
//! let universal = LevinUniversalUser::new(
//!     Box::new(toy::caesar_class("xyzzy", 16, false)),
//!     Box::new(toy::ack_sensing()),
//!     8,
//! );
//! let mut rng = GocRng::seed_from_u64(7);
//! let mut exec = Execution::new(
//!     goal.spawn_world(&mut rng),
//!     Box::new(toy::RelayServer::with_shift(5)), // adversarial pick
//!     Box::new(universal),
//!     rng,
//! );
//! let t = exec.run(20_000);
//! assert!(evaluate_finite(&goal, &t).achieved);
//! ```

pub use goc_core as core;
pub use goc_goals as goals;
pub use goc_learning as learning;
pub use goc_serve as serve;
pub use goc_vm as vm;

/// The most commonly used items across all crates.
pub mod prelude {
    pub use goc_core::prelude::*;
}
